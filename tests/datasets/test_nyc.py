"""Tests for the NYC-like generator: sizes, stats, and coverage structure."""

import numpy as np
import pytest

from repro.datasets.nyc import generate_nyc
from repro.trajectory.stats import summarize


class TestBasics:
    def test_sizes(self, small_nyc):
        assert len(small_nyc.billboards) == 120
        assert len(small_nyc.trajectories) == 1_500
        assert small_nyc.name == "NYC"

    def test_reproducible(self):
        a = generate_nyc(n_billboards=40, n_trajectories=100, seed=5)
        b = generate_nyc(n_billboards=40, n_trajectories=100, seed=5)
        assert np.array_equal(a.billboards.locations, b.billboards.locations)
        assert np.array_equal(a.trajectories.all_points, b.trajectories.all_points)

    def test_seed_changes_city(self):
        a = generate_nyc(n_billboards=40, n_trajectories=100, seed=1)
        b = generate_nyc(n_billboards=40, n_trajectories=100, seed=2)
        assert not np.array_equal(a.billboards.locations, b.billboards.locations)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError, match="positive"):
            generate_nyc(n_billboards=0)


class TestTable5Statistics:
    def test_trip_stats_match_paper_scale(self):
        city = generate_nyc(n_billboards=50, n_trajectories=2_000, seed=3)
        stats = summarize(city.trajectories)
        # Paper Table 5: 2.9 km and 569 s; generator tolerance ±25 %.
        assert 2_900 * 0.75 <= stats.avg_distance_m <= 2_900 * 1.25
        assert 569 * 0.75 <= stats.avg_travel_time_s <= 569 * 1.25


class TestCoverageStructure:
    def test_skewed_influence_distribution(self, small_nyc):
        # NYC's hotspot concentration ⇒ clear head/tail influence skew.
        influences = np.sort(small_nyc.coverage(100.0).individual_influences)[::-1]
        top_decile = influences[: max(1, len(influences) // 10)].mean()
        bottom_half = influences[len(influences) // 2 :].mean()
        assert top_decile > 2.0 * max(bottom_half, 1.0)

    def test_overlapping_coverage(self, small_nyc):
        coverage = small_nyc.coverage(100.0)
        beta = coverage.supply / max(coverage.total_reachable(), 1)
        assert beta > 1.5  # trips are seen by several billboards

    def test_coverage_cached_per_lambda(self, small_nyc):
        assert small_nyc.coverage(100.0) is small_nyc.coverage(100.0)
        assert small_nyc.coverage(100.0) is not small_nyc.coverage(150.0)

    def test_larger_lambda_increases_supply(self, small_nyc):
        assert small_nyc.coverage(150.0).supply > small_nyc.coverage(50.0).supply
