"""Tests for the shared city-building blocks."""

import numpy as np
import pytest

from repro.datasets import generate_city
from repro.datasets.synthetic import (
    manhattan_route,
    meandering_polyline,
    sample_mixture,
)
from repro.spatial.bbox import BoundingBox
from repro.utils.rng import as_generator

BOX = BoundingBox(0.0, 0.0, 10_000.0, 10_000.0)


class TestSampleMixture:
    def test_points_in_bbox(self):
        rng = as_generator(0)
        centers = np.array([[5_000.0, 5_000.0]])
        points = sample_mixture(rng, centers, np.array([1.0]), np.array([500.0]), 200, BOX)
        assert points.shape == (200, 2)
        assert points[:, 0].min() >= BOX.min_x
        assert points[:, 1].max() <= BOX.max_y

    def test_weights_steer_components(self):
        rng = as_generator(1)
        centers = np.array([[1_000.0, 1_000.0], [9_000.0, 9_000.0]])
        points = sample_mixture(
            rng, centers, np.array([0.95, 0.05]), np.array([100.0, 100.0]), 400, BOX
        )
        near_first = np.sum(np.linalg.norm(points - centers[0], axis=1) < 1_000.0)
        assert near_first > 300


class TestManhattanRoute:
    def test_l_shape_with_right_angle(self):
        rng = as_generator(2)
        route = manhattan_route(np.array([0.0, 0.0]), np.array([100.0, 200.0]), rng)
        assert route.shape == (3, 2)
        corner = route[1]
        assert corner[0] in (0.0, 100.0)
        assert corner[1] in (0.0, 200.0)

    def test_length_is_manhattan_distance(self):
        from repro.spatial.geometry import path_length

        rng = as_generator(3)
        route = manhattan_route(np.array([0.0, 0.0]), np.array([300.0, 400.0]), rng)
        assert path_length(route) == pytest.approx(700.0)


class TestMeanderingPolyline:
    def test_stays_in_bbox(self):
        rng = as_generator(4)
        polyline = meandering_polyline(
            rng, np.array([5_000.0, 5_000.0]), 0.0, 20_000.0, 500.0, 0.3, BOX
        )
        assert polyline[:, 0].min() >= BOX.min_x
        assert polyline[:, 0].max() <= BOX.max_x

    def test_total_length_scales_with_request(self):
        from repro.spatial.geometry import path_length

        rng = as_generator(5)
        short = meandering_polyline(rng, np.array([5_000.0, 5_000.0]), 0.0, 2_000.0, 500.0, 0.1, BOX)
        rng = as_generator(5)
        long = meandering_polyline(rng, np.array([5_000.0, 5_000.0]), 0.0, 8_000.0, 500.0, 0.1, BOX)
        assert path_length(long) > path_length(short)

    def test_rejects_bad_lengths(self):
        rng = as_generator(6)
        with pytest.raises(ValueError, match="positive"):
            meandering_polyline(rng, np.zeros(2), 0.0, -1.0, 500.0, 0.1, BOX)


class TestGenerateCityDispatch:
    def test_nyc_and_sg(self):
        nyc = generate_city("nyc", n_billboards=10, n_trajectories=10, seed=0)
        sg = generate_city("SG", n_billboards=30, n_trajectories=10, seed=0)
        assert nyc.name == "NYC"
        assert sg.name == "SG"

    def test_unknown_city(self):
        with pytest.raises(ValueError, match="unknown city"):
            generate_city("tokyo")

    def test_describe(self, small_nyc):
        assert "|U|=120" in small_nyc.describe()
