"""Tests for the SG-like generator: route structure and λ-insensitivity."""

import numpy as np
import pytest

from repro.datasets.sg import generate_sg
from repro.trajectory.stats import summarize


class TestBasics:
    def test_sizes(self, small_sg):
        # Route building may trim a handful of stops at the boundary.
        assert abs(len(small_sg.billboards) - 200) <= 10
        assert len(small_sg.trajectories) == 1_500
        assert small_sg.name == "SG"

    def test_reproducible(self):
        a = generate_sg(n_billboards=60, n_trajectories=100, seed=5)
        b = generate_sg(n_billboards=60, n_trajectories=100, seed=5)
        assert np.array_equal(a.billboards.locations, b.billboards.locations)
        assert np.array_equal(a.trajectories.all_points, b.trajectories.all_points)

    def test_labels_carry_route_and_stop(self, small_sg):
        assert small_sg.billboards[0].label.startswith("route")

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError, match="positive"):
            generate_sg(n_trajectories=-1)


class TestTable5Statistics:
    def test_trip_stats_match_paper_scale(self):
        city = generate_sg(n_billboards=150, n_trajectories=2_000, seed=3)
        stats = summarize(city.trajectories)
        # Paper Table 5: 4.2 km and 1342 s; generator tolerance ±30 %.
        assert 4_200 * 0.7 <= stats.avg_distance_m <= 4_200 * 1.3
        assert 1_342 * 0.7 <= stats.avg_travel_time_s <= 1_342 * 1.3


class TestCoverageStructure:
    def test_more_uniform_than_nyc(self, small_sg, small_nyc):
        # Paper Fig. 1a: SG influences are more uniform.  Compare coefficients
        # of variation.
        sg_influences = small_sg.coverage(100.0).individual_influences.astype(float)
        nyc_influences = small_nyc.coverage(100.0).individual_influences.astype(float)
        sg_cv = sg_influences.std() / max(sg_influences.mean(), 1e-9)
        nyc_cv = nyc_influences.std() / max(nyc_influences.mean(), 1e-9)
        assert sg_cv < nyc_cv

    def test_impression_curve_rises_faster_than_nyc(self, small_sg, small_nyc):
        # Paper Fig. 1b: the SG curve dominates NYC's at every fraction.
        fractions = [0.1, 0.2, 0.4, 0.6]
        sg_curve = small_sg.coverage(100.0).impression_curve(fractions)
        nyc_curve = small_nyc.coverage(100.0).impression_curve(fractions)
        assert np.all(sg_curve >= nyc_curve)

    def test_lambda_insensitive_below_stop_spacing(self, small_sg):
        # Stops are ≈420 m apart: growing λ from 100 to 150 should barely
        # change the supply (paper Section 7.4), unlike for NYC.
        supply_100 = small_sg.coverage(100.0).supply
        supply_150 = small_sg.coverage(150.0).supply
        assert supply_150 <= supply_100 * 1.25
