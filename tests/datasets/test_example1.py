"""The Section 1 worked example must reproduce Tables 1–4 exactly."""

import pytest

from repro.datasets.example1 import (
    ADVERTISER_CONTRACTS,
    BILLBOARD_INFLUENCES,
    example1_instance,
    example1_strategy1,
    example1_strategy2,
)


class TestTables1And2:
    def test_billboard_influences(self, example1):
        assert example1.coverage.individual_influences.tolist() == list(
            BILLBOARD_INFLUENCES
        )

    def test_contracts(self, example1):
        for advertiser, (demand, payment) in zip(
            example1.advertisers, ADVERTISER_CONTRACTS
        ):
            assert advertiser.demand == demand
            assert advertiser.payment == payment

    def test_disjoint_coverage_aggregates_like_the_example(self, example1):
        # The example sums individual influences; disjoint coverage makes the
        # union equal to the sum.
        assert example1.coverage.influence_of_set([0, 2]) == 5
        assert example1.coverage.influence_of_set([1, 4, 5]) == 8


class TestTable3Strategy1:
    def test_satisfaction_row(self, example1):
        allocation = example1_strategy1(example1)
        assert allocation.is_satisfied(0)
        assert allocation.is_satisfied(1)
        assert not allocation.is_satisfied(2)

    def test_influence_gap_row(self, example1):
        allocation = example1_strategy1(example1)
        gaps = [
            allocation.influence(i) - example1.advertisers[i].demand for i in range(3)
        ]
        assert gaps == [1, 0, -1]

    def test_regret_value(self, example1):
        # a1: excess 1/5·10 = 2; a3: 20(1 − 0.5·7/8) = 11.25.
        assert example1_strategy1(example1).total_regret() == pytest.approx(13.25)


class TestTable4Strategy2:
    def test_everyone_satisfied_exactly(self, example1):
        allocation = example1_strategy2(example1)
        for advertiser in example1.advertisers:
            assert (
                allocation.influence(advertiser.advertiser_id) == advertiser.demand
            )

    def test_zero_regret(self, example1):
        assert example1_strategy2(example1).total_regret() == 0.0

    def test_strategy2_beats_strategy1(self, example1):
        assert (
            example1_strategy2(example1).total_regret()
            < example1_strategy1(example1).total_regret()
        )


def test_gamma_parameter_flows_through():
    instance = example1_instance(gamma=0.0)
    allocation = example1_strategy1(instance)
    # With γ=0 the unsatisfied a3 forfeits the full payment: 20 + 2 = 22.
    assert allocation.total_regret() == pytest.approx(22.0)
