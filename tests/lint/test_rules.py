"""Each shipped lint rule, pinned on fixture snippets with exact locations.

Every test writes a small module into a throwaway tree shaped like the repo
(the rules scope by relative path), lints just that file, and asserts the
exact ``(rule, line, col)`` triples — so a rule that drifts to a different
node or loses a case fails here with a precise diff.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import run_lint


def lint_snippet(root, rel, source, rules=None):
    """Findings for one snippet placed at ``rel`` under a repo-shaped tree."""
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    result = run_lint(root, paths=[path], rule_ids=rules)
    return result.new


def triples(findings):
    return [(f.rule, f.line, f.col) for f in findings]


class TestDeterminism:
    def test_clock_read_outside_obs(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/algorithms/mod.py",
            """\
            import time


            def f():
                return time.perf_counter()
            """,
            rules=["determinism"],
        )
        assert triples(findings) == [("determinism", 5, 11)]
        assert "clock read time.perf_counter()" in findings[0].message

    def test_clock_read_allowed_in_obs_and_timing(self, tmp_path):
        source = """\
            import time


            def f():
                return time.monotonic()
            """
        for rel in ("src/repro/obs/mod.py", "src/repro/utils/timing.py"):
            assert lint_snippet(tmp_path, rel, source, rules=["determinism"]) == []

    def test_stdlib_and_numpy_global_rng(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/algorithms/mod.py",
            """\
            import random

            import numpy as np


            def f():
                a = random.random()
                b = np.random.rand(3)
                ok = np.random.default_rng(7)
                return a, b, ok
            """,
            rules=["determinism"],
        )
        assert triples(findings) == [
            ("determinism", 7, 8),
            ("determinism", 8, 8),
        ]

    def test_set_iteration_only_in_ordered_modules(self, tmp_path):
        source = """\
            def f(items):
                for item in set(items):
                    yield item
                for item in {1, 2}:
                    yield item
            """
        ordered = lint_snippet(
            tmp_path, "src/repro/algorithms/mod.py", source, rules=["determinism"]
        )
        assert triples(ordered) == [
            ("determinism", 2, 16),
            ("determinism", 4, 16),
        ]
        # The same code outside solver/kernel/reduction modules is fine.
        assert (
            lint_snippet(
                tmp_path, "src/repro/analysis/mod.py", source, rules=["determinism"]
            )
            == []
        )


class TestShmLifecycle:
    def test_creator_without_cleanup_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/parallel/mod.py",
            """\
            from multiprocessing.shared_memory import SharedMemory


            def create(size):
                return SharedMemory(create=True, size=size)
            """,
            rules=["shm-lifecycle"],
        )
        assert triples(findings) == [("shm-lifecycle", 5, 11)]

    def test_creator_with_close_and_unlink_is_clean(self, tmp_path):
        assert (
            lint_snippet(
                tmp_path,
                "src/repro/parallel/mod.py",
                """\
                from multiprocessing.shared_memory import SharedMemory


                def create(size):
                    segment = SharedMemory(create=True, size=size)
                    try:
                        return bytes(segment.buf)
                    finally:
                        segment.close()
                        segment.unlink()
                """,
                rules=["shm-lifecycle"],
            )
            == []
        )

    def test_attacher_must_not_unlink(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/parallel/mod.py",
            """\
            from multiprocessing.shared_memory import SharedMemory


            def attach(name):
                segment = SharedMemory(name=name)
                segment.close()
                segment.unlink()
            """,
            rules=["shm-lifecycle"],
        )
        assert triples(findings) == [("shm-lifecycle", 7, 4)]
        assert "attach" in findings[0].message


class TestObsNaming:
    def test_unregistered_literal_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/algorithms/mod.py",
            """\
            from repro import obs


            def f():
                obs.counter_add("definitely.not.registered")
            """,
            rules=["obs-naming"],
        )
        assert triples(findings) == [("obs-naming", 5, 20)]

    def test_registered_and_dynamic_names_are_clean(self, tmp_path):
        assert (
            lint_snippet(
                tmp_path,
                "src/repro/algorithms/mod.py",
                """\
                from repro import obs


                def f(tier):
                    obs.counter_add("pool.reuse")
                    obs.gauge_set(f"influence.tier.{tier}", 1)
                """,
                rules=["obs-naming"],
            )
            == []
        )

    def test_fstring_without_dynamic_prefix_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/algorithms/mod.py",
            """\
            from repro import obs


            def f(kind):
                obs.counter_add(f"made.up.{kind}")
            """,
            rules=["obs-naming"],
        )
        assert triples(findings) == [("obs-naming", 5, 20)]
        assert "dynamic" in findings[0].message

    def test_both_arms_of_conditional_names_checked(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/algorithms/mod.py",
            """\
            from repro import obs


            def f(hit):
                obs.counter_add("pool.reuse" if hit else "bogus.name")
            """,
            rules=["obs-naming"],
        )
        assert [(f.rule, f.line) for f in findings] == [("obs-naming", 5)]
        assert "'bogus.name'" in findings[0].message

    def test_obs_package_itself_is_exempt(self, tmp_path):
        assert (
            lint_snippet(
                tmp_path,
                "src/repro/obs/mod.py",
                """\
                from repro import obs


                def f():
                    obs.counter_add("internal.helper.name")
                """,
                rules=["obs-naming"],
            )
            == []
        )


class TestEnvRegistry:
    def test_direct_read_of_declared_knob_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/billboard/mod.py",
            """\
            import os


            def f():
                return os.environ.get("REPRO_NUMBA")
            """,
            rules=["env-registry"],
        )
        assert triples(findings) == [("env-registry", 5, 11)]
        assert "repro.env registry" in findings[0].message

    def test_undeclared_knob_gets_declaration_message(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/billboard/mod.py",
            """\
            import os


            def f():
                return os.getenv("REPRO_NOT_A_KNOB")
            """,
            rules=["env-registry"],
        )
        assert triples(findings) == [("env-registry", 5, 11)]
        assert "undeclared env knob" in findings[0].message

    def test_subscript_and_membership_reads_fire(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/billboard/mod.py",
            """\
            import os

            SOME_ENV = "REPRO_NUMBA"


            def f():
                if SOME_ENV in os.environ:
                    return os.environ[SOME_ENV]
                return None
            """,
            rules=["env-registry"],
        )
        assert triples(findings) == [
            ("env-registry", 7, 7),
            ("env-registry", 8, 15),
        ]

    def test_writes_and_foreign_keys_are_legal(self, tmp_path):
        assert (
            lint_snippet(
                tmp_path,
                "src/repro/billboard/mod.py",
                """\
                import os


                def f():
                    os.environ["REPRO_NUMBA"] = "1"
                    os.environ.pop("REPRO_NUMBA", None)
                    return os.environ.get("HOME")
                """,
                rules=["env-registry"],
            )
            == []
        )


class TestKernelContract:
    KERNEL = """\
        def fused_popcount(rows):
            \"\"\"Counts bits; bit-identical to the numpy reference.\"\"\"
            return rows


        def helper(rows):
            \"\"\"No contract claimed here.\"\"\"
            return rows
        """

    def test_untested_bit_identity_claim_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/billboard/popcount_jit.py",
            self.KERNEL,
            rules=["kernel-contract"],
        )
        assert triples(findings) == [("kernel-contract", 1, 0)]
        assert "fused_popcount" in findings[0].message

    def test_referenced_claim_is_clean(self, tmp_path):
        test_dir = tmp_path / "tests"
        test_dir.mkdir()
        (test_dir / "test_kernels.py").write_text(
            "from repro.billboard.popcount_jit import fused_popcount\n",
            encoding="utf-8",
        )
        assert (
            lint_snippet(
                tmp_path,
                "src/repro/billboard/popcount_jit.py",
                self.KERNEL,
                rules=["kernel-contract"],
            )
            == []
        )

    def test_rule_only_patrols_kernel_modules(self, tmp_path):
        assert (
            lint_snippet(
                tmp_path,
                "src/repro/billboard/other.py",
                self.KERNEL,
                rules=["kernel-contract"],
            )
            == []
        )


class TestObsGuard:
    def test_unconditional_span_in_loop_fires(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "src/repro/algorithms/mod.py",
            """\
            from repro import obs


            def sweep(rows):
                for row in rows:
                    with obs.span("solver.row"):
                        row.work()
            """,
            rules=["obs-guard"],
        )
        assert triples(findings) == [("obs-guard", 6, 13)]

    def test_guarded_and_hoisted_calls_are_clean(self, tmp_path):
        assert (
            lint_snippet(
                tmp_path,
                "src/repro/algorithms/mod.py",
                """\
                from repro import obs


                def sweep(rows):
                    with obs.span("solver.sweep"):
                        for row in rows:
                            if obs.enabled():
                                obs.record_event("solver.row", row=row)
                            row.work()
                """,
                rules=["obs-guard"],
            )
            == []
        )

    def test_nested_function_resets_loop_state(self, tmp_path):
        assert (
            lint_snippet(
                tmp_path,
                "src/repro/algorithms/mod.py",
                """\
                from repro import obs


                def build(rows):
                    closures = []
                    for row in rows:
                        def emit(row=row):
                            obs.record_event("solver.emit", row=row)
                        closures.append(emit)
                    return closures
                """,
                rules=["obs-guard"],
            )
            == []
        )


class TestUnknownRule:
    def test_unknown_rule_id_raises(self, tmp_path):
        with pytest.raises(KeyError, match="no-such-rule"):
            lint_snippet(
                tmp_path,
                "src/repro/algorithms/mod.py",
                "x = 1\n",
                rules=["no-such-rule"],
            )
