"""Linter framework: suppressions, baseline round-trips, CLI, JSON schema.

The meta-tests at the bottom pin the two repo-level guarantees: the
committed tree lints clean (zero non-baselined findings), and the README
env-knob table matches the ``repro.env`` registry.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    FINDINGS_SCHEMA,
    Finding,
    findings_payload,
    load_baseline,
    problems_to_findings,
    run_lint,
    write_baseline,
)
from repro.lint.cli import default_root, main

CLOCK_SNIPPET = """\
import time


def f():
    return time.perf_counter()
"""


def write_module(root: Path, rel: str, source: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestSuppressions:
    def test_line_suppression_hides_only_its_line(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/algorithms/mod.py",
            """\
            import time


            def f():
                a = time.perf_counter()  # repro-lint: ignore[determinism] pinned
                b = time.perf_counter()
                return a, b
            """,
        )
        result = run_lint(tmp_path, paths=[path], rule_ids=["determinism"])
        assert [(f.rule, f.line) for f in result.new] == [("determinism", 6)]

    def test_bare_ignore_suppresses_every_rule_on_the_line(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/algorithms/mod.py",
            """\
            import time


            def f():
                return time.perf_counter()  # repro-lint: ignore
            """,
        )
        assert run_lint(tmp_path, paths=[path]).new == []

    def test_file_suppression_covers_every_line(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/algorithms/mod.py",
            """\
            # repro-lint: ignore-file[determinism] bench-only module
            import time


            def f():
                return time.perf_counter()
            """,
        )
        assert run_lint(tmp_path, paths=[path]).new == []

    def test_suppression_for_other_rule_does_not_hide(self, tmp_path):
        path = write_module(
            tmp_path,
            "src/repro/algorithms/mod.py",
            """\
            import time


            def f():
                return time.perf_counter()  # repro-lint: ignore[obs-guard]
            """,
        )
        result = run_lint(tmp_path, paths=[path], rule_ids=["determinism"])
        assert len(result.new) == 1


class TestBaseline:
    def test_round_trip_grandfathers_findings(self, tmp_path):
        path = write_module(tmp_path, "src/repro/algorithms/mod.py", CLOCK_SNIPPET)
        first = run_lint(tmp_path, paths=[path])
        assert len(first.new) == 1

        baseline_path = tmp_path / "lint_baseline.json"
        write_baseline(first.new, baseline_path)
        second = run_lint(
            tmp_path, paths=[path], baseline=load_baseline(baseline_path)
        )
        assert second.new == []
        assert [f.rule for f in second.baselined] == ["determinism"]
        assert second.ok

    def test_baseline_key_survives_line_shifts(self, tmp_path):
        path = write_module(tmp_path, "src/repro/algorithms/mod.py", CLOCK_SNIPPET)
        baseline_path = tmp_path / "lint_baseline.json"
        write_baseline(run_lint(tmp_path, paths=[path]).new, baseline_path)

        # Shift the finding down two lines; the (rule, path, message) key
        # still matches, so edits above a grandfathered finding don't churn.
        write_module(
            tmp_path, "src/repro/algorithms/mod.py", "# padding\n# more\n" + CLOCK_SNIPPET
        )
        shifted = run_lint(
            tmp_path, paths=[path], baseline=load_baseline(baseline_path)
        )
        assert shifted.new == []
        assert len(shifted.baselined) == 1

    def test_stale_entries_are_counted(self, tmp_path):
        path = write_module(tmp_path, "src/repro/algorithms/mod.py", CLOCK_SNIPPET)
        baseline_path = tmp_path / "lint_baseline.json"
        write_baseline(run_lint(tmp_path, paths=[path]).new, baseline_path)

        write_module(tmp_path, "src/repro/algorithms/mod.py", "x = 1\n")
        result = run_lint(
            tmp_path, paths=[path], baseline=load_baseline(baseline_path)
        )
        assert result.new == [] and result.baselined == []
        assert result.stale_baseline == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == set()

    def test_malformed_baseline_raises(self, tmp_path):
        bad = tmp_path / "lint_baseline.json"
        bad.write_text('{"schema": "something-else", "entries": []}')
        with pytest.raises(ValueError, match="unknown baseline schema"):
            load_baseline(bad)


class TestFindingsSchema:
    def test_payload_shape(self):
        finding = Finding(
            path="src/repro/x.py", line=3, col=7, rule="determinism", message="m"
        )
        payload = findings_payload("repro-lint", [finding], files_checked=1)
        assert payload["schema"] == FINDINGS_SCHEMA
        assert payload["tool"] == "repro-lint"
        assert payload["count"] == 1
        assert payload["files_checked"] == 1
        assert payload["findings"] == [
            {
                "rule": "determinism",
                "path": "src/repro/x.py",
                "line": 3,
                "col": 7,
                "message": "m",
            }
        ]

    def test_render_format(self):
        finding = Finding(
            path="src/repro/x.py", line=3, col=7, rule="determinism", message="m"
        )
        assert finding.render() == "src/repro/x.py:3:7: [determinism] m"

    def test_trace_problems_share_the_schema(self):
        findings = problems_to_findings("trace-schema", "t.json", ["p1", "p2"])
        payload = findings_payload("repro-obs-validate", findings)
        assert payload["schema"] == FINDINGS_SCHEMA
        assert payload["count"] == 2
        assert {f["rule"] for f in payload["findings"]} == {"trace-schema"}


class TestCli:
    def test_json_output_and_exit_codes(self, tmp_path, capsys):
        write_module(tmp_path, "src/repro/algorithms/mod.py", CLOCK_SNIPPET)
        assert main(["--root", str(tmp_path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == FINDINGS_SCHEMA
        assert payload["tool"] == "repro-lint"
        assert payload["count"] == 1
        assert payload["findings"][0]["rule"] == "determinism"

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        write_module(tmp_path, "src/repro/algorithms/mod.py", CLOCK_SNIPPET)
        assert main(["--root", str(tmp_path), "--write-baseline"]) == 0
        assert (tmp_path / "lint_baseline.json").exists()
        capsys.readouterr()
        assert main(["--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s), 1 baselined" in out

    def test_no_baseline_flag_reexposes(self, tmp_path, capsys):
        write_module(tmp_path, "src/repro/algorithms/mod.py", CLOCK_SNIPPET)
        main(["--root", str(tmp_path), "--write-baseline"])
        capsys.readouterr()
        assert main(["--root", str(tmp_path), "--no-baseline"]) == 1

    def test_list_rules_names_all_shipped_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "determinism",
            "shm-lifecycle",
            "obs-naming",
            "env-registry",
            "kernel-contract",
            "obs-guard",
        ):
            assert rule_id in out


class TestRepoIsClean:
    def test_committed_tree_has_zero_new_findings(self):
        result = run_lint(default_root())
        assert result.new == [], "\n".join(f.render() for f in result.new)
        assert result.stale_baseline == 0

    def test_env_docs_table_matches_registry(self):
        root = default_root()
        proc = subprocess.run(
            [sys.executable, str(root / "scripts" / "gen_env_docs.py"), "--check"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_canary_proves_every_rule_fires(self):
        root = default_root()
        proc = subprocess.run(
            [sys.executable, str(root / "scripts" / "lint_canary.py")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
