"""The central ``repro.env`` knob registry.

Every ``REPRO_*`` read in the library routes through these declarations
(the ``env-registry`` lint rule enforces it); these tests pin the accessor
semantics, the save/restore context manager, and registry hygiene.
"""

from __future__ import annotations

import os

import pytest

from repro import env


class TestParsers:
    @pytest.mark.parametrize("raw", ["1", "true", "TRUE", "Yes", "on", " 1 "])
    def test_parse_bool_truthy(self, raw):
        assert env.parse_bool(raw) is True

    @pytest.mark.parametrize("raw", ["0", "false", "off", "", "no", "2"])
    def test_parse_bool_falsy(self, raw):
        assert env.parse_bool(raw) is False

    def test_parse_nonempty(self):
        assert env.parse_nonempty("/tmp/cache") == "/tmp/cache"
        assert env.parse_nonempty("") is None
        assert env.parse_nonempty("   ") is None


class TestKnobAccessors:
    def test_unset_returns_default_untouched(self, monkeypatch):
        monkeypatch.delenv(env.BITMAP_BUDGET_MB.name, raising=False)
        assert env.BITMAP_BUDGET_MB.raw() is None
        assert env.BITMAP_BUDGET_MB.get() == 512.0
        assert not env.BITMAP_BUDGET_MB.is_set()

    def test_set_value_is_parsed(self, monkeypatch):
        monkeypatch.setenv(env.BITMAP_BUDGET_MB.name, "64.5")
        assert env.BITMAP_BUDGET_MB.get() == 64.5
        assert env.BITMAP_BUDGET_MB.is_set()

    def test_empty_string_is_present_but_not_set(self, monkeypatch):
        monkeypatch.setenv(env.COVERAGE_CACHE.name, "")
        assert env.COVERAGE_CACHE.raw() == ""
        assert not env.COVERAGE_CACHE.is_set()
        assert env.COVERAGE_CACHE.get() is None  # parse_nonempty("") -> None

    def test_parser_errors_propagate(self, monkeypatch):
        monkeypatch.setenv(env.COVERAGE_CHUNK_SIZE.name, "not-a-number")
        with pytest.raises(ValueError):
            env.COVERAGE_CHUNK_SIZE.get()

    def test_bool_knob(self, monkeypatch):
        monkeypatch.setenv(env.NUMBA.name, "yes")
        assert env.NUMBA.get() is True
        monkeypatch.setenv(env.NUMBA.name, "0")
        assert env.NUMBA.get() is False


class TestTemporary:
    def test_set_and_restore(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUMBA", "0")
        with env.temporary("REPRO_NUMBA", "1"):
            assert os.environ["REPRO_NUMBA"] == "1"
        assert os.environ["REPRO_NUMBA"] == "0"

    def test_unset_for_scope_then_restore(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUMBA", "1")
        with env.temporary("REPRO_NUMBA", None):
            assert "REPRO_NUMBA" not in os.environ
        assert os.environ["REPRO_NUMBA"] == "1"

    def test_restores_absence(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUMBA", raising=False)
        with env.temporary("REPRO_NUMBA", "1"):
            assert os.environ["REPRO_NUMBA"] == "1"
        assert "REPRO_NUMBA" not in os.environ

    def test_restores_on_exception(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUMBA", "0")
        with pytest.raises(RuntimeError):
            with env.temporary("REPRO_NUMBA", "1"):
                raise RuntimeError("boom")
        assert os.environ["REPRO_NUMBA"] == "0"

    def test_non_string_values_are_coerced(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCREEN_MIN_CELLS", raising=False)
        with env.temporary("REPRO_SCREEN_MIN_CELLS", 4096):
            assert os.environ["REPRO_SCREEN_MIN_CELLS"] == "4096"


class TestRegistryHygiene:
    def test_every_knob_is_repro_prefixed_and_documented(self):
        for name, knob in env.REGISTRY.items():
            assert name == knob.name
            assert name.startswith("REPRO_"), name
            assert knob.doc.strip(), f"{name} has no doc"

    def test_lookup_by_name(self):
        assert env.knob("REPRO_NUMBA") is env.NUMBA
        with pytest.raises(KeyError):
            env.knob("REPRO_NOT_DECLARED")

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            env._declare(env.NUMBA)

    def test_module_constants_still_expose_names(self):
        # Call sites keep their historical *_ENV constants; they must stay
        # bound to the registry's names.
        from repro.billboard import bitmap_store, coverage_cache, influence, popcount_jit
        from repro.parallel import pool

        assert popcount_jit.NUMBA_ENV == env.NUMBA.name
        assert bitmap_store.STORAGE_ENV == env.BITMAP_STORAGE.name
        assert bitmap_store.SPILL_DIR_ENV == env.BITMAP_SPILL_DIR.name
        assert coverage_cache.CACHE_ENV == env.COVERAGE_CACHE.name
        assert influence.BITMAP_BUDGET_ENV == env.BITMAP_BUDGET_MB.name
        assert influence.CHUNK_SIZE_ENV == env.COVERAGE_CHUNK_SIZE.name
        assert pool.OVERSUBSCRIBE_ENV == env.POOL_OVERSUBSCRIBE.name
