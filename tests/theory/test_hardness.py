"""Tests for the N3DM → MROAM reduction (paper Section 4).

The central claim: the reduced instance has minimum regret zero iff the N3DM
instance admits a matching.  We verify both directions with the exhaustive
oracle on tiny instances and with the explicit matching-to-plan construction.
"""

import pytest

from repro.algorithms.exhaustive import ExhaustiveSolver
from repro.core.validation import validate_allocation
from repro.theory.hardness import matching_to_allocation, reduce_n3dm_to_mroam
from repro.theory.n3dm import N3DMInstance, find_matching, yes_instance


class TestReductionStructure:
    def test_shape(self):
        instance = yes_instance(2, seed=0)
        mroam = reduce_n3dm_to_mroam(instance)
        assert mroam.num_billboards == 6
        assert mroam.num_advertisers == 2
        assert mroam.gamma == 0.0

    def test_disjoint_coverage(self):
        instance = yes_instance(2, seed=1)
        mroam = reduce_n3dm_to_mroam(instance)
        seen: set[int] = set()
        for billboard_id in range(mroam.num_billboards):
            covered = set(mroam.coverage.covered_by(billboard_id).tolist())
            assert not (seen & covered)
            seen |= covered

    def test_demands_equal_b_plus_13c(self):
        instance = N3DMInstance((1,), (2,), (3,), bound=6)
        mroam = reduce_n3dm_to_mroam(instance, c=100)
        assert mroam.advertisers[0].demand == 6 + 13 * 100

    def test_influence_revision(self):
        instance = N3DMInstance((1,), (2,), (3,), bound=6)
        mroam = reduce_n3dm_to_mroam(instance, c=100)
        influences = mroam.coverage.individual_influences
        assert influences.tolist() == [101, 302, 903]

    def test_validation(self):
        with pytest.raises(ValueError, match="payment"):
            reduce_n3dm_to_mroam(yes_instance(1, seed=0), payment=0.0)
        with pytest.raises(ValueError, match="c"):
            reduce_n3dm_to_mroam(yes_instance(1, seed=0), c=-5)


class TestMatchingToAllocation:
    def test_matching_yields_zero_regret(self):
        for seed in range(5):
            instance = yes_instance(2, seed=seed)
            matching = find_matching(instance)
            assert matching is not None
            mroam = reduce_n3dm_to_mroam(instance)
            allocation = matching_to_allocation(mroam, matching)
            validate_allocation(allocation)
            assert allocation.total_regret() == pytest.approx(0.0)

    def test_rejects_non_reduction_instance(self, tiny_instance):
        with pytest.raises(ValueError, match="reduction"):
            matching_to_allocation(tiny_instance, [(0, 0, 0)])


class TestEquivalence:
    """Zero minimum regret ⟺ the N3DM answer is YES (both directions)."""

    def test_yes_instances_have_zero_optimum(self):
        instance = yes_instance(1, seed=3)
        mroam = reduce_n3dm_to_mroam(instance)
        assert ExhaustiveSolver().solve(mroam).total_regret == pytest.approx(0.0)

    def test_no_instance_has_positive_optimum(self):
        no_instance = N3DMInstance((1, 3), (1, 1), (1, 1), bound=4)
        assert find_matching(no_instance) is None
        mroam = reduce_n3dm_to_mroam(no_instance)
        optimum = ExhaustiveSolver(max_plans=1_000_000).solve(mroam).total_regret
        assert optimum > 0.0

    def test_decision_equivalence_over_random_instances(self):
        from repro.theory.n3dm import random_instance

        for seed in range(6):
            instance = random_instance(1, seed=seed)
            mroam = reduce_n3dm_to_mroam(instance)
            optimum = ExhaustiveSolver().solve(mroam).total_regret
            has_matching = find_matching(instance) is not None
            assert (optimum == pytest.approx(0.0)) == has_matching
