"""Tests for the objective-structure analysis (paper Example 2)."""

import pytest

from repro.theory.properties import (
    example2_instance,
    find_monotonicity_violation,
    find_submodularity_violation,
    influence_function,
    regret_gain_function,
)
from tests.conftest import make_random_instance


class TestExample2:
    def test_instance_shape(self):
        instance = example2_instance()
        assert instance.num_billboards == 4
        assert instance.advertisers[0].demand == 10
        # S1 = {b0}: influence 8; S2 = {b0, b1}: influence 9 — as in the paper.
        assert instance.coverage.influence_of_set([0]) == 8
        assert instance.coverage.influence_of_set([0, 1]) == 9
        assert instance.coverage.influence_of_set([0, 1, 2]) == 10

    def test_paper_arithmetic(self):
        # With γ as in the example: R(S1) = 10 − 8γ, R(S2 ∪ o1) = 0,
        # and adding o2 past the demand makes regret positive again.
        instance = example2_instance()
        gamma = instance.gamma
        assert instance.regret_of(0, 8) == pytest.approx(10 - 8 * gamma * 10 / 10)
        assert instance.regret_of(0, 10) == 0.0
        assert instance.regret_of(0, 11) > 0.0

    def test_regret_gain_is_not_monotone(self):
        instance = example2_instance()
        violation = find_monotonicity_violation(
            regret_gain_function(instance), range(instance.num_billboards)
        )
        assert violation is not None
        # The violation is exactly "adding a billboard past the demand".
        achieved = instance.coverage.influence_of_set(violation.superset)
        assert achieved > instance.advertisers[0].demand

    def test_regret_gain_is_not_submodular(self):
        instance = example2_instance()
        violation = find_submodularity_violation(
            regret_gain_function(instance), range(instance.num_billboards)
        )
        assert violation is not None
        assert violation.gain_small < violation.gain_big


class TestInfluenceIsWellBehaved:
    """The contrast the paper draws: coverage influence itself is fine."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_influence_monotone(self, seed):
        instance = make_random_instance(seed, num_billboards=5, num_trajectories=12)
        assert (
            find_monotonicity_violation(
                influence_function(instance), range(instance.num_billboards)
            )
            is None
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_influence_submodular(self, seed):
        instance = make_random_instance(seed, num_billboards=5, num_trajectories=12)
        assert (
            find_submodularity_violation(
                influence_function(instance), range(instance.num_billboards)
            )
            is None
        )
