"""Tests for the dual-objective analysis (Definition 6.1, Lemma 6.1, Thm 2)."""

import numpy as np
import pytest

from repro.algorithms.bls import billboard_driven_local_search
from repro.billboard.influence import CoverageIndex
from repro.core.advertiser import Advertiser
from repro.core.allocation import Allocation
from repro.core.problem import MROAMInstance
from repro.theory.duality import (
    approximation_bound,
    is_approximate_local_maximum,
    max_influence_ratio,
)


def single_advertiser_instance(coverage_lists, num_trajectories, demand, payment=10.0):
    coverage = CoverageIndex.from_coverage_lists(coverage_lists, num_trajectories)
    return MROAMInstance(coverage, [Advertiser(0, demand, payment)], gamma=1.0)


class TestMaxInfluenceRatio:
    def test_psi(self):
        instance = single_advertiser_instance([[0, 1], [2]], 3, demand=4)
        assert max_influence_ratio(instance, 0) == pytest.approx(0.5)


class TestApproximationBound:
    def test_linear_term_dominates_for_large_r(self):
        instance = single_advertiser_instance([[0]], 2, demand=4)  # ψ = 0.25
        bound = approximation_bound(instance, 0, r=100.0)
        assert bound == pytest.approx(1.0 + 100.0 * 1)

    def test_geometric_term(self):
        instance = single_advertiser_instance([[0], [1]], 2, demand=4)  # ψ = 0.25
        bound = approximation_bound(instance, 0, r=0.0)
        assert bound == pytest.approx((1 - 0.25) ** (-2))

    def test_infinite_when_single_billboard_meets_demand(self):
        instance = single_advertiser_instance([[0, 1]], 2, demand=2)  # ψ = 1
        assert approximation_bound(instance, 0, r=0.0) == float("inf")

    def test_rejects_negative_r(self):
        instance = single_advertiser_instance([[0]], 1, demand=2)
        with pytest.raises(ValueError, match="r"):
            approximation_bound(instance, 0, r=-0.1)


class TestLocalMaximumCheck:
    def test_exact_satisfaction_is_local_max(self):
        instance = single_advertiser_instance([[0, 1], [2, 3]], 4, demand=4)
        allocation = Allocation(instance)
        allocation.assign(0, 0)
        allocation.assign(1, 0)
        # R' = L at exact satisfaction; removing or adding cannot beat it.
        assert is_approximate_local_maximum(allocation, 0, r=0.0)

    def test_detects_improvable_plan(self):
        instance = single_advertiser_instance([[0, 1], [2, 3]], 4, demand=4)
        allocation = Allocation(instance)
        allocation.assign(0, 0)  # R' = 10·2/4 = 5; adding o1 reaches 10
        assert not is_approximate_local_maximum(allocation, 0, r=0.0)

    def test_large_r_accepts_anything(self):
        instance = single_advertiser_instance([[0, 1], [2, 3]], 4, demand=4)
        allocation = Allocation(instance)
        allocation.assign(0, 0)
        assert is_approximate_local_maximum(allocation, 0, r=10.0)

    def test_rejects_negative_r(self, tiny_instance):
        with pytest.raises(ValueError, match="r"):
            is_approximate_local_maximum(Allocation(tiny_instance), 0, r=-1.0)


class TestTheorem2Empirically:
    """BLS's plan satisfies the ρ-bound against the exhaustive R' optimum."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_bls_dual_within_bound(self, seed):
        rng = np.random.default_rng(seed)
        # Small single-advertiser instances with ψ < 1 so the bound is finite.
        num_trajectories = 12
        lists = [
            sorted(rng.choice(num_trajectories, size=2, replace=False).tolist())
            for _ in range(6)
        ]
        demand = 9  # ψ = 2/9 < 1
        instance = single_advertiser_instance(lists, num_trajectories, demand=demand)

        allocation = Allocation(instance)
        result = billboard_driven_local_search(allocation)
        achieved_dual = result.total_dual()

        # Exhaustive optimum of R' over all subsets.
        import itertools

        best_dual = 0.0
        for size in range(len(lists) + 1):
            for subset in itertools.combinations(range(len(lists)), size):
                value = instance.dual_of(0, instance.coverage.influence_of_set(subset))
                best_dual = max(best_dual, value)

        rho = approximation_bound(instance, 0, r=0.0)
        assert rho * max(achieved_dual, 1e-12) >= best_dual - 1e-9
