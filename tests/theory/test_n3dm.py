"""Tests for the N3DM machinery."""

import pytest

from repro.theory.n3dm import N3DMInstance, find_matching, random_instance, yes_instance


class TestInstance:
    def test_rejects_mismatched_sizes(self):
        with pytest.raises(ValueError, match="share a size"):
            N3DMInstance((1,), (1, 2), (1,), bound=3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            N3DMInstance((), (), (), bound=0)

    def test_consistency_check(self):
        assert N3DMInstance((1,), (2,), (3,), bound=6).is_consistent()
        assert not N3DMInstance((1,), (2,), (3,), bound=7).is_consistent()


class TestFindMatching:
    def test_trivial_yes(self):
        instance = N3DMInstance((1,), (2,), (3,), bound=6)
        matching = find_matching(instance)
        assert matching == [(0, 0, 0)]

    def test_simple_yes_with_permutation(self):
        # x=(1,2), y=(2,1), z=(3,3): matching pairs 1+2+3 and 2+1+3.
        instance = N3DMInstance((1, 2), (2, 1), (3, 3), bound=6)
        matching = find_matching(instance)
        assert matching is not None
        for i, j, k in matching:
            assert instance.x[i] + instance.y[j] + instance.z[k] == 6

    def test_no_instance(self):
        # Consistent bound but no valid triple split: x=(1,3), y=(1,1), z=(1,1);
        # bound=4; triples: 1+1+1=3≠4, 3+1+1=5≠4 → impossible.
        instance = N3DMInstance((1, 3), (1, 1), (1, 1), bound=4)
        assert instance.is_consistent()
        assert find_matching(instance) is None

    def test_inconsistent_bound_short_circuits(self):
        assert find_matching(N3DMInstance((1,), (1,), (1,), bound=10)) is None


class TestGenerators:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_yes_instance_always_has_matching(self, n):
        for seed in range(5):
            instance = yes_instance(n, seed=seed)
            assert instance.is_consistent()
            matching = find_matching(instance)
            assert matching is not None

    def test_yes_instance_rejects_bad_n(self):
        with pytest.raises(ValueError, match="n"):
            yes_instance(0)

    def test_random_instance_is_consistent(self):
        for seed in range(5):
            instance = random_instance(3, seed=seed)
            assert instance.is_consistent()

    def test_random_instances_include_both_answers(self):
        answers = {find_matching(random_instance(2, seed=seed)) is not None for seed in range(30)}
        assert answers == {True, False}
