"""Shared fixtures for the test suite.

Fixtures are session-scoped where the underlying object is immutable and
expensive (generated cities, coverage indices); tests that mutate state build
their own allocations from these shared instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.billboard.influence import CoverageIndex
from repro.core.advertiser import Advertiser
from repro.core.problem import MROAMInstance
from repro.datasets import example1_instance, generate_nyc, generate_sg
from repro.utils.rng import as_generator


@pytest.fixture(scope="session")
def example1() -> MROAMInstance:
    """The Section 1 worked example (γ = 0.5)."""
    return example1_instance()


@pytest.fixture(scope="session")
def tiny_instance() -> MROAMInstance:
    """A 5-billboard / 2-advertiser instance with overlapping coverage.

    Coverage (trajectory ids):
        o0: {0, 1, 2}      o1: {2, 3}        o2: {3, 4, 5}
        o3: {0, 5}         o4: {6}
    Advertisers: a0 demands 4 pays 8; a1 demands 3 pays 9.
    """
    coverage = CoverageIndex.from_coverage_lists(
        [[0, 1, 2], [2, 3], [3, 4, 5], [0, 5], [6]], num_trajectories=7
    )
    advertisers = [Advertiser(0, 4, 8.0), Advertiser(1, 3, 9.0)]
    return MROAMInstance(coverage, advertisers, gamma=0.5)


@pytest.fixture(scope="session")
def small_nyc():
    """A small NYC-like city shared across tests (immutable)."""
    return generate_nyc(n_billboards=120, n_trajectories=1_500, seed=11)


@pytest.fixture(scope="session")
def small_sg():
    """A small SG-like city shared across tests (immutable)."""
    return generate_sg(n_billboards=200, n_trajectories=1_500, seed=11)


def make_random_instance(
    seed: int,
    num_billboards: int = 12,
    num_trajectories: int = 30,
    num_advertisers: int = 3,
    gamma: float = 0.5,
    max_coverage: int = 8,
) -> MROAMInstance:
    """A random small MROAM instance (used by oracle and property tests)."""
    rng = as_generator(seed)
    coverage_lists = []
    for _ in range(num_billboards):
        size = int(rng.integers(0, max_coverage + 1))
        coverage_lists.append(
            sorted(rng.choice(num_trajectories, size=size, replace=False).tolist())
        )
    coverage = CoverageIndex.from_coverage_lists(coverage_lists, num_trajectories)
    advertisers = []
    for advertiser_id in range(num_advertisers):
        demand = int(rng.integers(2, max(3, num_trajectories // 2)))
        payment = float(rng.integers(5, 50))
        advertisers.append(Advertiser(advertiser_id, demand, payment))
    return MROAMInstance(coverage, advertisers, gamma=gamma)


def random_allocation(instance: MROAMInstance, seed: int, fill: float = 0.6):
    """A random partial allocation over ``instance``."""
    from repro.core.allocation import Allocation

    rng = as_generator(seed)
    allocation = Allocation(instance)
    for billboard_id in range(instance.num_billboards):
        if rng.random() < fill:
            allocation.assign(
                billboard_id, int(rng.integers(0, instance.num_advertisers))
            )
    return allocation


@pytest.fixture
def rng() -> np.random.Generator:
    return as_generator(1234)
