"""Tests for the Table 6 parameter grid."""

from repro.experiments.configs import (
    ALPHA_VALUES,
    BENCH_SCALE,
    GAMMA_VALUES,
    LAMBDA_VALUES,
    P_AVG_VALUES,
    default_scenario,
)


def test_table6_values():
    assert ALPHA_VALUES == (0.4, 0.6, 0.8, 1.0, 1.2)
    assert P_AVG_VALUES == (0.01, 0.02, 0.05, 0.10, 0.20)
    assert GAMMA_VALUES == (0.0, 0.25, 0.5, 0.75, 1.0)
    assert LAMBDA_VALUES == (50.0, 100.0, 150.0, 200.0)


def test_default_scenario_uses_bold_defaults():
    scenario = default_scenario("nyc")
    assert scenario.alpha == 1.0
    assert scenario.p_avg == 0.05
    assert scenario.gamma == 0.5
    assert scenario.lambda_m == 100.0
    assert (scenario.n_billboards, scenario.n_trajectories) == BENCH_SCALE["nyc"]


def test_default_scenario_full_scale():
    scenario = default_scenario("sg", bench_scale=False)
    assert scenario.n_billboards is None
    assert scenario.n_trajectories is None


def test_sg_has_more_billboards_than_nyc():
    # Mirrors the paper's |U|: 4092 (SG) vs 1462 (NYC).
    assert BENCH_SCALE["sg"][0] > BENCH_SCALE["nyc"][0]
