"""Tests for CSV export/import of sweep results."""

import pytest

from repro.experiments.export import SWEEP_COLUMNS, load_sweep_csv, sweep_to_csv
from repro.experiments.harness import ExperimentResult
from repro.experiments.metrics import CellMetrics


def fake_result() -> ExperimentResult:
    result = ExperimentResult(parameter="alpha", values=[0.4, 1.0])
    for value in result.values:
        result.cells[value] = {
            method: CellMetrics(
                method=method,
                total_regret=10.0 * value,
                unsatisfied_penalty=6.0 * value,
                excessive_influence=4.0 * value,
                satisfied_advertisers=2,
                num_advertisers=3,
                runtime_s=0.5,
            )
            for method in ("g-global", "bls")
        }
    return result


def test_round_trip(tmp_path):
    path = sweep_to_csv(fake_result(), tmp_path / "sweep.csv")
    rows = load_sweep_csv(path)
    assert len(rows) == 4  # 2 values × 2 methods
    first = rows[0]
    assert first["parameter"] == "alpha"
    assert first["value"] == 0.4
    assert first["total_regret"] == pytest.approx(4.0)
    assert first["satisfied_advertisers"] == 2
    assert first["runtime_s"] == pytest.approx(0.5)


def test_header_matches_columns(tmp_path):
    path = sweep_to_csv(fake_result(), tmp_path / "sweep.csv")
    header = path.read_text().splitlines()[0]
    assert header == ",".join(SWEEP_COLUMNS)


def test_creates_parent_directories(tmp_path):
    path = sweep_to_csv(fake_result(), tmp_path / "nested" / "dir" / "sweep.csv")
    assert path.exists()
