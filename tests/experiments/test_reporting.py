"""Tests for the text figure renditions."""

from repro.experiments.harness import ExperimentResult
from repro.experiments.metrics import CellMetrics
from repro.experiments.reporting import (
    format_distribution_table,
    format_regret_table,
    format_runtime_table,
)


def fake_result() -> ExperimentResult:
    result = ExperimentResult(parameter="alpha", values=[0.4, 1.0])
    for value in result.values:
        result.cells[value] = {
            method: CellMetrics(
                method=method,
                total_regret=100.0 * value,
                unsatisfied_penalty=60.0 * value,
                excessive_influence=40.0 * value,
                satisfied_advertisers=3,
                num_advertisers=4,
                runtime_s=0.25,
            )
            for method in ("g-order", "bls")
        }
    return result


class TestRegretTable:
    def test_contains_rows_and_percentages(self):
        table = format_regret_table(fake_result(), "Figure X")
        assert "Figure X" in table
        assert "G-Order" in table
        assert "BLS" in table
        assert "40%" in table and "100%" in table
        assert "60.0%" in table  # unsat share
        assert "3/4" in table

    def test_value_format_override(self):
        table = format_regret_table(fake_result(), "T", value_format="{:.2f}")
        assert "0.40" in table


class TestRuntimeTable:
    def test_contains_seconds(self):
        table = format_runtime_table(fake_result(), "Runtime")
        assert "0.250s" in table
        assert "G-Order" in table


class TestDistributionTable:
    def test_rows_per_fraction(self):
        table = format_distribution_table(
            [0.1, 0.5], {"NYC": [0.2, 0.6], "SG": [0.4, 0.9]}, "Figure 1b"
        )
        assert "NYC" in table and "SG" in table
        assert "10%" in table and "50%" in table
        assert "0.600" in table
