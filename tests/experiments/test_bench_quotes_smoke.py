"""Quote-throughput benchmark smoke wiring (tier-1).

The bench script itself carries the load-bearing assertions — every
overlapping quote bit-identical across pricing engines, a journal rollback
per rejected quote, the host allocation object surviving unchanged — so
this test only has to run the smoke mode end-to-end and check the report
shape the CI legs and the regression gate consume.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestBenchQuotesSmoke:
    def test_bench_quotes_smoke(self, tmp_path):
        """The quote benchmark's smoke mode runs end-to-end; it exits
        non-zero if any overlapping quote diverges between the incremental
        and from-scratch engines or a rejected quote fails to roll back."""
        output = tmp_path / "bench_quotes.json"
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "bench_quotes.py"),
                "--smoke",
                "--output",
                str(output),
            ],
            check=True,
            env=env,
            cwd=REPO_ROOT,
            capture_output=True,
            timeout=600,
        )
        history = json.loads(output.read_text())
        assert history["schema"] == "bench-history-v1"
        report = history["runs"][-1]
        assert report["smoke"] is True

        paths = report["quote_paths"]
        assert paths["identity_checked_quotes"] > 0
        assert paths["quotes_per_s"] > 0.0
        assert paths["full_quote_s"] > 0.0 and paths["incremental_quote_s"] > 0.0
        # No speedup floor in smoke (the shallow book can't show a stable
        # multiple) but the ratio must be the recorded quotient.
        assert paths["speedup"] == paths["full_quote_s"] / paths["incremental_quote_s"]

        latency = report["quote_latency"]
        assert latency["samples"] > 0
        assert 0.0 < latency["p50_s"] <= latency["p95_s"] <= latency["p99_s"]
        # Every priced-and-rejected quote rolled back through the journal.
        assert latency["journal_rollbacks"] >= latency["samples"]
        assert latency["regret_cache_hit_rate"] > 0.5

        batched = report["quote_many"]
        assert batched["serial_batch_quote_s"] > 0.0
