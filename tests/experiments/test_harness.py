"""Tests for the experiment runner, on a very small city."""

import pytest

from repro.experiments.harness import run_cell, sweep
from repro.market.scenario import Scenario


@pytest.fixture(scope="module")
def scenario():
    return Scenario(
        dataset="nyc", n_billboards=60, n_trajectories=400, alpha=0.8, p_avg=0.1, seed=3
    )


@pytest.fixture(scope="module")
def city(scenario):
    return scenario.build_city()


class TestRunCell:
    def test_all_methods_present(self, scenario, city):
        metrics = run_cell(scenario, city=city, restarts=1)
        assert set(metrics) == {"g-order", "g-global", "als", "bls"}
        for cell in metrics.values():
            assert cell.total_regret >= 0.0
            assert cell.runtime_s >= 0.0

    def test_method_subset(self, scenario, city):
        metrics = run_cell(scenario, city=city, methods=["g-order"], restarts=1)
        assert set(metrics) == {"g-order"}

    def test_local_search_dominates_greedy(self, scenario, city):
        metrics = run_cell(scenario, city=city, restarts=1)
        assert metrics["bls"].total_regret <= metrics["g-global"].total_regret + 1e-6
        assert metrics["als"].total_regret <= metrics["g-global"].total_regret + 1e-6

    def test_runtime_repeats_average(self, scenario, city):
        metrics = run_cell(
            scenario, city=city, methods=["g-global"], restarts=1, runtime_repeats=3
        )
        assert metrics["g-global"].runtime_s > 0.0

    def test_runtime_repeats_validation(self, scenario, city):
        import pytest as _pytest

        with _pytest.raises(ValueError, match="runtime_repeats"):
            run_cell(scenario, city=city, runtime_repeats=0)


class TestSweep:
    def test_alpha_sweep_structure(self, scenario, city):
        result = sweep(
            scenario, "alpha", (0.4, 0.8), methods=["g-global", "bls"], restarts=1, city=city
        )
        assert result.parameter == "alpha"
        assert result.values == [0.4, 0.8]
        assert set(result.cells) == {0.4, 0.8}
        series = result.series("bls")
        assert len(series) == 2

    def test_series_attribute_selection(self, scenario, city):
        result = sweep(scenario, "alpha", (0.8,), methods=["g-global"], restarts=1, city=city)
        runtimes = result.series("g-global", "runtime_s")
        assert runtimes[0] >= 0.0

    def test_metric_lookup(self, scenario, city):
        result = sweep(scenario, "gamma", (0.0, 1.0), methods=["g-global"], restarts=1, city=city)
        cell = result.metric(0.0, "g-global")
        assert cell.method == "g-global"

    def test_gamma_zero_not_cheaper_than_gamma_one(self, scenario, city):
        # Larger γ forgives unsatisfied demand more ⇒ regret non-increasing.
        result = sweep(
            scenario.with_params(alpha=1.2),
            "gamma",
            (0.0, 1.0),
            methods=["g-global"],
            restarts=1,
            city=city,
        )
        assert (
            result.metric(1.0, "g-global").total_regret
            <= result.metric(0.0, "g-global").total_regret + 1e-6
        )
