"""Parallel harness tests: ``workers=N`` must not change any regret metric.

Solvers are deterministic given ``(instance, solver_seed)`` and the pool
reassembles results in sweep order, so the parallel path must be
byte-identical to the serial path on everything except measured wall-clock.
Also wires the coverage benchmark's smoke mode into the tier-1 run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro import obs
from repro.experiments.harness import run_cell, sweep
from repro.market.scenario import Scenario

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def scenario():
    return Scenario(
        dataset="nyc", n_billboards=40, n_trajectories=250, alpha=0.8, p_avg=0.1, seed=3
    )


def strip_runtimes(metrics):
    return {method: replace(cell, runtime_s=0.0) for method, cell in metrics.items()}


class TestParallelEqualsSerial:
    def test_sweep_workers_match_serial(self, scenario):
        kwargs = dict(
            parameter="alpha",
            values=(0.4, 0.8),
            methods=["g-global", "bls"],
            restarts=1,
        )
        serial = sweep(scenario, **kwargs)
        parallel = sweep(scenario, workers=2, **kwargs)
        assert parallel.parameter == serial.parameter
        assert parallel.values == serial.values
        for value in serial.values:
            assert strip_runtimes(parallel.cells[value]) == strip_runtimes(
                serial.cells[value]
            )

    def test_run_cell_workers_match_serial(self, scenario):
        kwargs = dict(methods=["g-order", "g-global"], restarts=1)
        serial = run_cell(scenario, **kwargs)
        parallel = run_cell(scenario, workers=2, **kwargs)
        assert strip_runtimes(parallel) == strip_runtimes(serial)
        assert list(parallel) == list(serial)  # method order preserved

    def test_single_method_stays_serial(self, scenario):
        # Nothing to fan out: one method on one cell takes the serial path.
        metrics = run_cell(scenario, methods=["g-order"], restarts=1, workers=4)
        assert set(metrics) == {"g-order"}


class TestSharedCoverageInWorkers:
    def test_workers_attach_instead_of_unpickling(self, scenario):
        """The pool ships the base-λ coverage index through shared memory:
        each worker attaches once in its initializer (``shm.attach``) rather
        than unpickling a private copy per task."""
        obs.enable()
        try:
            obs.reset()
            run_cell(scenario, methods=["g-order", "g-global"], restarts=1, workers=2)
            attaches = obs.counter_value("shm.attach")
            creates = obs.counter_value("shm.create")
        finally:
            obs.disable()
            obs.reset()
        # One attach per worker whose snapshot shipped back — bounded by the
        # pool size, never by the task count.
        assert 1 <= attaches <= 2
        assert creates >= 2  # flat + offsets (+ bitmap) exported by the parent


class TestWorkerValidation:
    def test_rejects_zero_workers(self, scenario):
        with pytest.raises(ValueError, match="workers"):
            run_cell(scenario, methods=["g-order"], restarts=1, workers=0)

    def test_rejects_negative_workers_in_sweep(self, scenario):
        with pytest.raises(ValueError, match="workers"):
            sweep(scenario, "alpha", (0.8,), methods=["g-order"], workers=-1)

    def test_workers_none_means_serial(self, scenario):
        metrics = run_cell(scenario, methods=["g-order"], restarts=1, workers=None)
        assert set(metrics) == {"g-order"}


class TestBenchSmoke:
    def test_bench_coverage_smoke(self, tmp_path):
        """The benchmark script's smoke mode runs end-to-end and reports
        internally-consistent old-vs-new timings."""
        output = tmp_path / "bench.json"
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "bench_coverage.py"),
                "--smoke",
                "--output",
                str(output),
            ],
            check=True,
            env=env,
            cwd=REPO_ROOT,
            capture_output=True,
            timeout=600,
        )
        history = json.loads(output.read_text())
        assert history["schema"] == "bench-history-v1"
        report = history["runs"][-1]
        assert report["smoke"] is True
        for section in ("build", "influence_of_set", "bls_cell"):
            assert report[section]["speedup"] > 0.0
        assert report["influence_of_set"]["queries"] == 100

    def test_bench_solvers_smoke(self, tmp_path):
        """The solver benchmark's smoke mode runs end-to-end; it exits
        non-zero if the dirty sweep engine diverges from the full-scan
        regret or parallel restarts diverge from serial."""
        output = tmp_path / "bench_solvers.json"
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "bench_solvers.py"),
                "--smoke",
                "--output",
                str(output),
            ],
            check=True,
            env=env,
            cwd=REPO_ROOT,
            capture_output=True,
            timeout=600,
        )
        history = json.loads(output.read_text())
        assert history["schema"] == "bench-history-v1"
        report = history["runs"][-1]
        assert report["smoke"] is True
        engines = report["bls_local_search"]
        assert engines["dirty"]["total_regret"] == engines["full"]["total_regret"]
        assert engines["speedup"] > 0.0
        restarts = report["parallel_restarts"]
        assert restarts["shm_attach"] >= 1
        assert restarts["serial_s"] > 0.0 and restarts["parallel_s"] > 0.0
        # Auto grain batching packs several restarts per pool task (smoke
        # restarts finish well under the 0.5 s/task target).
        grain = restarts["grain"]
        assert 0 < grain["tasks"] < restarts["restarts"]
        assert grain["restarts_per_task"] > 1.0
        phases = report["bls_sweep_phases"]
        assert 0.0 <= phases["screen_share"] <= 1.0
        assert phases["screen_rounds"] > 0
