"""Tests for the figure registry."""

import pytest

from repro.experiments.figures import FIGURES, run_figure


def test_registry_covers_every_paper_figure():
    assert set(FIGURES) == {f"fig{i}" for i in range(2, 13)}


def test_specs_are_consistent():
    for spec in FIGURES.values():
        assert spec.dataset in ("nyc", "sg")
        assert spec.parameter in ("alpha", "p_avg", "gamma", "lambda_m")
        assert len(spec.values) >= 3
        assert spec.title.startswith("Figure")


def test_unknown_figure_rejected():
    with pytest.raises(ValueError, match="unknown figure"):
        run_figure("fig99")


def test_run_figure_small_scale():
    # Tiny scale so this stays a unit test; the benchmark suite runs full.
    result, table = run_figure("fig10", seed=2, restarts=0, scale=(50, 300))
    assert result.parameter == "gamma"
    assert "Figure 10" in table
    assert "BLS" in table


def test_run_figure_runtime_variant():
    result, table = run_figure("fig8", seed=2, restarts=0, scale=(50, 300))
    assert "runtime" in table.lower() or "s |" in table
    assert result.parameter == "alpha"
