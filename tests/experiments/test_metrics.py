"""Tests for the experiment metrics."""

import pytest

from repro.algorithms.registry import make_solver
from repro.experiments.metrics import CellMetrics


def test_from_result(example1):
    result = make_solver("g-global").solve(example1)
    metrics = CellMetrics.from_result("g-global", result)
    assert metrics.method == "g-global"
    assert metrics.total_regret == pytest.approx(result.total_regret)
    assert metrics.num_advertisers == 3
    assert 0 <= metrics.satisfied_advertisers <= 3
    assert metrics.runtime_s >= 0.0


def test_percentages_sum_when_regret_positive():
    metrics = CellMetrics(
        method="x",
        total_regret=10.0,
        unsatisfied_penalty=7.5,
        excessive_influence=2.5,
        satisfied_advertisers=1,
        num_advertisers=2,
        runtime_s=0.1,
    )
    assert metrics.unsatisfied_pct == pytest.approx(75.0)
    assert metrics.excessive_pct == pytest.approx(25.0)


def test_percentages_zero_when_regret_zero():
    metrics = CellMetrics(
        method="x",
        total_regret=0.0,
        unsatisfied_penalty=0.0,
        excessive_influence=0.0,
        satisfied_advertisers=2,
        num_advertisers=2,
        runtime_s=0.1,
    )
    assert metrics.unsatisfied_pct == 0.0
    assert metrics.excessive_pct == 0.0
