"""Tests for the online host workflow."""

import pytest

from repro.billboard.influence import CoverageIndex
from repro.core.validation import validate_allocation
from repro.market.online import OnlineHost


def disjoint_coverage(num_billboards=6, per_board=3) -> CoverageIndex:
    lists = [range(i * per_board, (i + 1) * per_board) for i in range(num_billboards)]
    return CoverageIndex.from_coverage_lists(lists, num_billboards * per_board)


class TestQuote:
    def test_quote_does_not_mutate_state(self):
        host = OnlineHost(disjoint_coverage())
        quote = host.quote(demand=3, payment=3.0, name="first")
        assert quote.would_satisfy
        assert host.allocation is None
        assert host.advertisers == ()

    def test_serviceable_proposal_is_attractive(self):
        host = OnlineHost(disjoint_coverage())
        quote = host.quote(demand=6, payment=6.0)
        assert quote.attractive
        assert quote.regret_delta <= 1e-9

    def test_oversized_proposal_is_unattractive(self):
        host = OnlineHost(disjoint_coverage())
        quote = host.quote(demand=1_000, payment=1_000.0)
        assert not quote.would_satisfy
        assert not quote.attractive
        assert quote.regret_delta > 0


class TestAcceptance:
    def test_accept_grows_the_book(self):
        host = OnlineHost(disjoint_coverage())
        host.accept(demand=3, payment=3.0, name="a")
        host.accept(demand=6, payment=6.0, name="b")
        assert len(host.advertisers) == 2
        assert host.allocation is not None
        validate_allocation(host.allocation)
        assert host.allocation.is_satisfied(0)
        assert host.allocation.is_satisfied(1)
        assert host.total_regret() == pytest.approx(0.0)

    def test_existing_assignments_carry_over(self):
        host = OnlineHost(disjoint_coverage(), repair_sweeps=0)
        host.accept(demand=3, payment=3.0, name="a")
        first_set = host.allocation.billboards_of(0)
        host.accept(demand=3, payment=3.0, name="b")
        # With no repair sweeps the incumbent's billboards stay put.
        assert host.allocation.billboards_of(0) == first_set

    def test_fill_until_capacity(self):
        host = OnlineHost(disjoint_coverage(num_billboards=4, per_board=3))
        for index in range(4):
            host.accept(demand=3, payment=3.0, name=f"adv{index}")
        assert host.total_regret() == pytest.approx(0.0)
        # A fifth advertiser cannot be served: the quote must say so.
        quote = host.quote(demand=3, payment=3.0, name="late")
        assert not quote.would_satisfy

    def test_quote_then_accept_consistency(self):
        host = OnlineHost(disjoint_coverage())
        quote = host.quote(demand=9, payment=9.0)
        accepted = host.accept(demand=9, payment=9.0)
        assert accepted.regret_after == pytest.approx(quote.regret_after)


class TestReoptimize:
    def test_reoptimize_never_worsens(self):
        host = OnlineHost(disjoint_coverage(), repair_sweeps=0, seed=1)
        host.accept(demand=3, payment=3.0)
        host.accept(demand=9, payment=9.0)
        before = host.total_regret()
        after = host.reoptimize(restarts=2)
        assert after <= before + 1e-9
        validate_allocation(host.allocation)

    def test_reoptimize_empty_book(self):
        host = OnlineHost(disjoint_coverage())
        assert host.reoptimize() == 0.0

    def test_instance_requires_book(self):
        host = OnlineHost(disjoint_coverage())
        with pytest.raises(ValueError, match="empty"):
            host.instance()


class TestConfiguration:
    def test_rejects_negative_sweeps(self):
        with pytest.raises(ValueError, match="repair_sweeps"):
            OnlineHost(disjoint_coverage(), repair_sweeps=-1)
