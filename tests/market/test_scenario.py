"""Tests for scenario construction."""

import pytest

from repro.market.scenario import Scenario


class TestScenario:
    def test_defaults_match_table6_bold_values(self):
        scenario = Scenario()
        assert scenario.alpha == 1.0
        assert scenario.p_avg == 0.05
        assert scenario.gamma == 0.5
        assert scenario.lambda_m == 100.0

    def test_with_params(self):
        scenario = Scenario(alpha=1.0).with_params(alpha=0.4, gamma=0.25)
        assert scenario.alpha == 0.4
        assert scenario.gamma == 0.25
        assert scenario.p_avg == 0.05  # untouched

    def test_build_instance_end_to_end(self):
        scenario = Scenario(
            dataset="nyc", n_billboards=40, n_trajectories=200, alpha=0.6, p_avg=0.1, seed=1
        )
        instance = scenario.build_instance()
        assert instance.num_billboards == 40
        assert instance.num_advertisers == 6  # 0.6 / 0.1
        assert instance.gamma == 0.5
        # The realized α tracks the requested one (ω noise aside).
        assert instance.demand_supply_ratio == pytest.approx(0.6, rel=0.2)

    def test_city_reuse(self, small_nyc):
        scenario = Scenario(dataset="nyc", alpha=0.8, p_avg=0.1, seed=3)
        instance = scenario.build_instance(small_nyc)
        assert instance.num_billboards == len(small_nyc.billboards)

    def test_same_cell_reproducible(self, small_nyc):
        scenario = Scenario(dataset="nyc", seed=5)
        first = scenario.build_instance(small_nyc)
        second = scenario.build_instance(small_nyc)
        assert [a.demand for a in first.advertisers] == [
            a.demand for a in second.advertisers
        ]

    def test_different_cells_draw_different_contracts(self, small_nyc):
        base = Scenario(dataset="nyc", seed=5)
        a = base.build_instance(small_nyc)
        b = base.with_params(alpha=0.8).build_instance(small_nyc)
        assert [x.demand for x in a.advertisers] != [x.demand for x in b.advertisers]

    def test_lambda_flows_to_coverage(self, small_nyc):
        wide = Scenario(dataset="nyc", lambda_m=200.0, seed=1).build_instance(small_nyc)
        narrow = Scenario(dataset="nyc", lambda_m=50.0, seed=1).build_instance(small_nyc)
        assert wide.coverage.supply > narrow.coverage.supply

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Scenario().alpha = 2.0
