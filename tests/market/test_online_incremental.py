"""Equivalence and lifecycle tests for the incremental quoting engine.

The load-bearing contract (DESIGN.md §15): ``pricing="incremental"`` is
**bit-identical** to ``pricing="full"`` in everything a caller can see —
``regret_before``/``regret_after``/``would_satisfy`` of every quote, and the
resulting allocation after every accept — over arbitrary interleavings of
quote / accept / reoptimize.  The property tests hold two hosts in lockstep
over randomized sequences on two coverage families and compare with ``==``
(no tolerances).
"""

import os
import random

import numpy as np
import pytest

from repro import env, obs
from repro.billboard.influence import CoverageIndex
from repro.market.online import OnlineHost, PRICING_MODES, Quote


def disjoint_coverage(num_billboards=8, per_board=3) -> CoverageIndex:
    lists = [range(i * per_board, (i + 1) * per_board) for i in range(num_billboards)]
    return CoverageIndex.from_coverage_lists(lists, num_billboards * per_board)


def overlapping_coverage(seed, num_billboards=40, num_trajectories=300) -> CoverageIndex:
    rng = random.Random(seed)
    lists = [
        rng.sample(range(num_trajectories), rng.randint(1, 12))
        for _ in range(num_billboards)
    ]
    return CoverageIndex.from_coverage_lists(lists, num_trajectories)


COVERAGE_FAMILIES = {
    "disjoint": lambda seed: disjoint_coverage(),
    "overlapping": overlapping_coverage,
}


def assert_same_book_plan(incremental: OnlineHost, full: OnlineHost) -> None:
    assert len(incremental.advertisers) == len(full.advertisers)
    if full.allocation is None:
        assert incremental.allocation is None
        return
    for advertiser_id in range(len(full.advertisers)):
        assert incremental.allocation.billboards_of(
            advertiser_id
        ) == full.allocation.billboards_of(advertiser_id)
    assert incremental.total_regret() == full.total_regret()


class TestBitIdentity:
    @pytest.mark.parametrize("family", sorted(COVERAGE_FAMILIES))
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_lockstep_quote_accept_reoptimize(self, family, seed):
        coverage = COVERAGE_FAMILIES[family](seed)
        incremental = OnlineHost(coverage, pricing="incremental", seed=seed)
        full = OnlineHost(coverage, pricing="full", seed=seed)
        rng = random.Random(1000 * seed + 7)
        for step in range(25):
            demand = rng.randint(2, 35)
            payment = round(rng.uniform(0.5, 15.0), 3)
            roll = rng.random()
            if roll < 0.5:
                quote_inc = incremental.quote(demand, payment)
                quote_full = full.quote(demand, payment)
            elif roll < 0.85:
                quote_inc = incremental.accept(demand, payment, name=f"a{step}")
                quote_full = full.accept(demand, payment, name=f"a{step}")
            else:
                assert incremental.reoptimize(restarts=2) == full.reoptimize(
                    restarts=2
                )
                continue
            assert quote_inc.regret_before == quote_full.regret_before
            assert quote_inc.regret_after == quote_full.regret_after
            assert quote_inc.would_satisfy == quote_full.would_satisfy
            assert_same_book_plan(incremental, full)

    @pytest.mark.parametrize("family", sorted(COVERAGE_FAMILIES))
    def test_repair_sweeps_zero_lockstep(self, family):
        coverage = COVERAGE_FAMILIES[family](5)
        incremental = OnlineHost(coverage, pricing="incremental", repair_sweeps=0)
        full = OnlineHost(coverage, pricing="full", repair_sweeps=0)
        rng = random.Random(5)
        for step in range(12):
            demand, payment = rng.randint(2, 20), round(rng.uniform(1, 8), 2)
            quote_inc = incremental.accept(demand, payment)
            quote_full = full.accept(demand, payment)
            assert quote_inc.regret_after == quote_full.regret_after
            assert_same_book_plan(incremental, full)

    def test_fixed_seed_determinism(self):
        results = []
        for _ in range(2):
            host = OnlineHost(overlapping_coverage(9), seed=9)
            rng = random.Random(9)
            trace = []
            for step in range(15):
                demand, payment = rng.randint(2, 25), round(rng.uniform(1, 9), 2)
                if rng.random() < 0.6:
                    quote = host.quote(demand, payment)
                else:
                    quote = host.accept(demand, payment)
                trace.append((quote.regret_after, quote.would_satisfy))
            trace.append(host.reoptimize(restarts=2))
            results.append(tuple(trace))
        assert results[0] == results[1]


class TestRollbackIsolation:
    def test_rejected_quote_leaves_state_byte_identical(self):
        host = OnlineHost(overlapping_coverage(2), pricing="incremental")
        rng = random.Random(2)
        for i in range(5):
            host.accept(rng.randint(3, 20), round(rng.uniform(1, 8), 2))
        allocation = host.allocation
        owner_before = allocation._owner.copy()
        counts_before = allocation._counts.copy()
        influences_before = allocation._influences.copy()
        sets_before = [frozenset(s) for s in allocation._sets]
        obs.enable()
        obs.reset()
        try:
            host.quote(demand=18, payment=6.0)
            # Rejected quotes roll back through the journal — no fresh
            # allocation object, no copied arrays.
            assert obs.counter_value("journal.rollback") >= 1
        finally:
            obs.disable()
            obs.reset()
        assert host.allocation is allocation
        assert np.array_equal(allocation._owner, owner_before)
        assert np.array_equal(allocation._counts, counts_before)
        assert np.array_equal(allocation._influences, influences_before)
        assert [frozenset(s) for s in allocation._sets] == sets_before

    def test_accept_preserves_allocation_object(self):
        host = OnlineHost(disjoint_coverage(), pricing="incremental")
        host.accept(demand=3, payment=3.0)
        allocation = host.allocation
        host.accept(demand=3, payment=3.0)
        host.quote(demand=3, payment=3.0)
        assert host.allocation is allocation


class TestTokens:
    def test_commit_of_quote_equals_accept(self):
        coverage = overlapping_coverage(4)
        via_commit = OnlineHost(coverage, seed=4)
        via_accept = OnlineHost(coverage, seed=4)
        rng = random.Random(4)
        for step in range(8):
            demand, payment = rng.randint(2, 20), round(rng.uniform(1, 8), 2)
            quote = via_commit.quote(demand, payment)
            via_commit.commit(quote)
            via_accept.accept(demand, payment)
            assert_same_book_plan(via_commit, via_accept)

    @pytest.mark.parametrize("pricing", PRICING_MODES)
    def test_stale_token_is_rejected(self, pricing):
        host = OnlineHost(disjoint_coverage(), pricing=pricing)
        quote = host.quote(demand=3, payment=3.0)
        host.accept(demand=3, payment=3.0)
        with pytest.raises(ValueError, match="stale"):
            host.commit(quote)

    def test_adopted_reoptimize_invalidates_tokens(self):
        host = OnlineHost(overlapping_coverage(6), repair_sweeps=0, seed=6)
        rng = random.Random(6)
        for _ in range(6):
            host.accept(rng.randint(3, 18), round(rng.uniform(1, 8), 2))
        before = host.total_regret()
        quote = host.quote(demand=10, payment=4.0)
        after = host.reoptimize(restarts=3)
        if after < before:  # the plan changed: the token must die
            with pytest.raises(ValueError, match="stale"):
                host.commit(quote)
        else:  # incumbent kept: the token is still exactly valid
            host.commit(quote)

    def test_tokenless_quote_cannot_commit(self):
        host = OnlineHost(disjoint_coverage())
        quote = Quote("x", 3, 3.0, 0.0, 0.0, True)
        with pytest.raises(ValueError, match="token"):
            host.commit(quote)


class TestReoptimize:
    def test_keeps_better_incumbent_object(self):
        host = OnlineHost(disjoint_coverage(), pricing="incremental", seed=1)
        host.accept(demand=3, payment=3.0)
        host.accept(demand=6, payment=6.0)
        assert host.total_regret() == pytest.approx(0.0)
        allocation = host.allocation
        # The incumbent is already optimal, so reoptimize must keep it — the
        # live workspace object, not a rebuilt equal-regret plan.
        assert host.reoptimize(restarts=2) == pytest.approx(0.0)
        assert host.allocation is allocation

    def test_interleaved_with_quotes(self):
        coverage = overlapping_coverage(8)
        incremental = OnlineHost(coverage, pricing="incremental", seed=8)
        full = OnlineHost(coverage, pricing="full", seed=8)
        rng = random.Random(8)
        for step in range(4):
            for _ in range(3):
                demand, payment = rng.randint(2, 22), round(rng.uniform(1, 9), 2)
                incremental.accept(demand, payment)
                full.accept(demand, payment)
            assert incremental.reoptimize(restarts=2) == full.reoptimize(restarts=2)
            demand, payment = rng.randint(2, 22), round(rng.uniform(1, 9), 2)
            assert (
                incremental.quote(demand, payment).regret_after
                == full.quote(demand, payment).regret_after
            )
            assert_same_book_plan(incremental, full)


class TestQuoteMany:
    def test_serial_batch_equals_quote_loop(self):
        host = OnlineHost(overlapping_coverage(3))
        rng = random.Random(3)
        for _ in range(4):
            host.accept(rng.randint(3, 18), round(rng.uniform(1, 8), 2))
        proposals = [
            (rng.randint(2, 25), round(rng.uniform(0.5, 8), 2), f"p{i}")
            for i in range(6)
        ]
        loop = [host.quote(d, p, n) for d, p, n in proposals]
        batch = host.quote_many(proposals)
        assert [(q.regret_before, q.regret_after, q.would_satisfy) for q in loop] == [
            (q.regret_before, q.regret_after, q.would_satisfy) for q in batch
        ]
        # Serial batch quotes stay committable.
        host.commit(batch[0])

    def test_batch_accepts_two_tuples(self):
        host = OnlineHost(disjoint_coverage())
        quotes = host.quote_many([(3, 3.0), (6, 6.0)])
        assert [q.demand for q in quotes] == [3, 6]
        assert quotes[0].advertiser_name == ""

    def test_parallel_batch_matches_serial(self):
        if len(os.sched_getaffinity(0)) < 2:
            pytest.skip("needs >= 2 schedulable CPUs for a real pool")
        host = OnlineHost(overlapping_coverage(7))
        rng = random.Random(7)
        for _ in range(4):
            host.accept(rng.randint(3, 18), round(rng.uniform(1, 8), 2))
        proposals = [
            (rng.randint(2, 25), round(rng.uniform(0.5, 8), 2), f"p{i}")
            for i in range(6)
        ]
        serial = host.quote_many(proposals)
        parallel = host.quote_many(proposals, workers=2)
        assert [
            (q.regret_before, q.regret_after, q.would_satisfy) for q in serial
        ] == [(q.regret_before, q.regret_after, q.would_satisfy) for q in parallel]
        # Pool-priced quotes are price-only.
        assert all(q.token is None for q in parallel)


class TestConfiguration:
    def test_env_knob_selects_engine(self):
        with env.temporary(env.QUOTE_PRICING.name, "full"):
            assert OnlineHost(disjoint_coverage()).pricing == "full"
        with env.temporary(env.QUOTE_PRICING.name, None):
            assert OnlineHost(disjoint_coverage()).pricing == "incremental"

    def test_unknown_pricing_rejected(self):
        with pytest.raises(ValueError, match="pricing"):
            OnlineHost(disjoint_coverage(), pricing="warp")
