"""Tests for the advertiser generation model (Section 7.1.3)."""

import numpy as np
import pytest

from repro.market.demand import advertiser_count, generate_advertisers


class TestAdvertiserCount:
    @pytest.mark.parametrize(
        "alpha, p_avg, expected",
        [(1.0, 0.05, 20), (1.0, 0.01, 100), (1.0, 0.20, 5), (0.4, 0.01, 40), (1.2, 0.02, 60)],
    )
    def test_paper_cells(self, alpha, p_avg, expected):
        # e.g. α=100 %, p=1 % ⇒ 100 small advertisers (Section 7.1.3).
        assert advertiser_count(alpha, p_avg) == expected

    def test_at_least_one(self):
        assert advertiser_count(0.01, 0.99) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            advertiser_count(0.0, 0.05)
        with pytest.raises(ValueError, match="p_avg"):
            advertiser_count(1.0, 0.0)


class TestGenerateAdvertisers:
    SUPPLY = 100_000

    def test_count_and_ids(self):
        advertisers = generate_advertisers(self.SUPPLY, alpha=1.0, p_avg=0.05, seed=0)
        assert len(advertisers) == 20
        assert [a.advertiser_id for a in advertisers] == list(range(20))

    def test_demand_within_omega_range(self):
        advertisers = generate_advertisers(self.SUPPLY, alpha=1.0, p_avg=0.05, seed=1)
        expected_base = self.SUPPLY * 0.05
        for advertiser in advertisers:
            assert 0.8 * expected_base - 1 <= advertiser.demand <= 1.2 * expected_base

    def test_payment_within_epsilon_range(self):
        advertisers = generate_advertisers(self.SUPPLY, alpha=1.0, p_avg=0.05, seed=2)
        for advertiser in advertisers:
            assert 0.9 * advertiser.demand - 1 <= advertiser.payment <= 1.1 * advertiser.demand

    def test_global_demand_tracks_alpha(self):
        advertisers = generate_advertisers(self.SUPPLY, alpha=0.8, p_avg=0.01, seed=3)
        global_demand = sum(a.demand for a in advertisers)
        assert global_demand == pytest.approx(0.8 * self.SUPPLY, rel=0.1)

    def test_reproducible(self):
        a = generate_advertisers(self.SUPPLY, 1.0, 0.05, seed=7)
        b = generate_advertisers(self.SUPPLY, 1.0, 0.05, seed=7)
        assert [(x.demand, x.payment) for x in a] == [(x.demand, x.payment) for x in b]

    def test_tiny_supply_yields_valid_contracts(self):
        advertisers = generate_advertisers(10, alpha=1.0, p_avg=0.05, seed=4)
        for advertiser in advertisers:
            assert advertiser.demand >= 1
            assert advertiser.payment >= 1

    def test_validation(self):
        with pytest.raises(ValueError, match="supply"):
            generate_advertisers(0, 1.0, 0.05)
