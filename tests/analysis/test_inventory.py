"""Tests for inventory criticality ranking."""

import pytest

from repro.analysis.inventory import inventory_criticality
from repro.core.allocation import Allocation
from repro.core.moves import delta_release
from repro.datasets import example1_strategy2
from tests.conftest import make_random_instance, random_allocation


def test_only_assigned_billboards_ranked(example1):
    allocation = example1_strategy2(example1)
    rows = inventory_criticality(allocation)
    assert len(rows) == 6  # all six assigned in Strategy 2
    assert all(row.advertiser_id >= 0 for row in rows)


def test_ranking_is_descending(example1):
    rows = inventory_criticality(example1_strategy2(example1))
    values = [row.regret_increase_if_lost for row in rows]
    assert values == sorted(values, reverse=True)


def test_top_k(example1):
    rows = inventory_criticality(example1_strategy2(example1), top_k=2)
    assert len(rows) == 2


def test_matches_delta_release(example1):
    allocation = example1_strategy2(example1)
    for row in inventory_criticality(allocation):
        assert row.regret_increase_if_lost == pytest.approx(
            delta_release(allocation, row.billboard_id)
        )


def test_exactly_satisfied_plan_depends_on_every_billboard(example1):
    # Strategy 2 satisfies everyone exactly, so losing any billboard with
    # unique coverage pushes its advertiser below demand: criticality > 0.
    rows = inventory_criticality(example1_strategy2(example1))
    assert all(row.regret_increase_if_lost > 0 for row in rows)


def test_unassigned_only_plan_is_empty(tiny_instance):
    assert inventory_criticality(Allocation(tiny_instance)) == []


def test_overserving_billboard_has_negative_criticality():
    # A random over-filled plan usually contains at least one billboard whose
    # loss would *reduce* regret; criticality is allowed to be negative.
    instance = make_random_instance(3, num_billboards=10, num_advertisers=2)
    allocation = random_allocation(instance, 4, fill=0.9)
    rows = inventory_criticality(allocation)
    assert rows  # something is assigned
    assert rows[-1].regret_increase_if_lost == min(
        row.regret_increase_if_lost for row in rows
    )
