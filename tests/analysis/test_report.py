"""Tests for the per-advertiser deployment report."""

import pytest

from repro.analysis.report import plan_report
from repro.datasets import example1_strategy1, example1_strategy2


def test_report_rows_match_worked_example(example1):
    rows = plan_report(example1_strategy1(example1))
    assert [row.name for row in rows] == ["a1", "a2", "a3"]

    a1, a2, a3 = rows
    assert a1.satisfied and a1.achieved_influence == 6 and a1.regret == pytest.approx(2.0)
    assert a2.satisfied and a2.regret == 0.0
    assert not a3.satisfied and a3.regret == pytest.approx(11.25)
    assert a3.billboard_count == 4


def test_fill_rate(example1):
    rows = plan_report(example1_strategy1(example1))
    assert rows[0].fill_rate == pytest.approx(6 / 5)
    assert rows[2].fill_rate == pytest.approx(7 / 8)


def test_collectable_revenue_uses_dual(example1):
    rows = plan_report(example1_strategy2(example1))
    # Zero-regret plan: every advertiser pays in full.
    assert sum(row.collectable_revenue for row in rows) == pytest.approx(
        example1.total_payment()
    )


def test_as_row_formatting(example1):
    rows = plan_report(example1_strategy1(example1))
    text = rows[2].as_row()
    assert "UNSATISFIED" in text
    assert "a3" in text
