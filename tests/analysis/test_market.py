"""Tests for the market feasibility summary."""

import pytest

from repro.analysis.market import market_summary
from repro.billboard.influence import CoverageIndex
from repro.core.advertiser import Advertiser
from repro.core.problem import MROAMInstance


def make_instance(demands, num_trajectories=10):
    coverage = CoverageIndex.from_coverage_lists(
        [[0, 1, 2], [3, 4], [5]], num_trajectories
    )
    advertisers = [Advertiser(i, d, float(d)) for i, d in enumerate(demands)]
    return MROAMInstance(coverage, advertisers)


def test_basic_quantities():
    instance = make_instance([3, 3])
    summary = market_summary(instance)
    assert summary.supply == 6
    assert summary.reachable_audience == 6
    assert summary.global_demand == 6.0
    assert summary.alpha == pytest.approx(1.0)
    assert summary.avg_individual_demand_ratio == pytest.approx(0.5)
    assert not summary.overdemanded
    assert summary.unsatisfiable_advertisers == 0


def test_overdemand_flag():
    summary = market_summary(make_instance([5, 5]))
    assert summary.overdemanded
    assert "WARNING" in summary.describe()


def test_unsatisfiable_advertiser_flag():
    summary = market_summary(make_instance([7]))  # reachable = 6
    assert summary.unsatisfiable_advertisers == 1
    assert "reachable audience" in summary.describe()


def test_describe_mentions_sizes(example1):
    text = market_summary(example1).describe()
    assert "|U|=6" in text
    assert "|A|=3" in text
