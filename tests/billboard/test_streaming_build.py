"""Chunked/streamed coverage ingestion is bit-identical to single-shot.

The streaming path joins the corpus against the billboard grid one bounded
chunk at a time; because chunks carry consecutive trajectory-id ranges and
the distance predicate is evaluated per (billboard, point) pair, the
resulting CSR must match the in-memory build bit for bit — for every chunk
size, with and without exact segment geometry.
"""

import numpy as np
import pytest

from repro.billboard.influence import (
    CHUNK_SIZE_ENV,
    CoverageIndex,
    _CorpusChunk,
    _join_chunk,
    build_coverage,
)
from repro.datasets import generate_city
from repro.datasets.stream import concat_chunks, nyc_stream


@pytest.fixture(scope="module")
def city():
    return generate_city("nyc", n_billboards=25, n_trajectories=40, seed=3)


def assert_same_coverage(a: CoverageIndex, b: CoverageIndex) -> None:
    assert a.num_billboards == b.num_billboards
    assert a.num_trajectories == b.num_trajectories
    flat_a, offsets_a = a.to_arrays()
    flat_b, offsets_b = b.to_arrays()
    assert np.array_equal(offsets_a, offsets_b)
    assert np.array_equal(flat_a, flat_b)


def db_chunks(trajectories, chunk_size):
    """Slice a TrajectoryDB into plain ``(points, counts)`` pairs."""
    counts = trajectories.point_counts
    bounds = np.concatenate([[0], np.cumsum(counts)])
    for start in range(0, len(trajectories), chunk_size):
        end = min(start + chunk_size, len(trajectories))
        yield (
            trajectories.all_points[bounds[start] : bounds[end]],
            counts[start:end],
        )


class TestChunkedEqualsSingleShot:
    @pytest.mark.parametrize("chunk_size", [1, 7, 40, 45])
    def test_constructor_chunking(self, city, chunk_size):
        single = CoverageIndex(city.billboards, city.trajectories, lambda_m=100.0)
        chunked = CoverageIndex(
            city.billboards, city.trajectories, lambda_m=100.0, chunk_size=chunk_size
        )
        assert_same_coverage(single, chunked)

    @pytest.mark.parametrize("chunk_size", [1, 7, 45])
    def test_exact_segments_chunking(self, city, chunk_size):
        """The per-chunk margin join + exact confirm matches single-shot."""
        single = CoverageIndex(
            city.billboards, city.trajectories, lambda_m=100.0, exact_segments=True
        )
        chunked = CoverageIndex(
            city.billboards,
            city.trajectories,
            lambda_m=100.0,
            exact_segments=True,
            chunk_size=chunk_size,
        )
        assert_same_coverage(single, chunked)

    def test_from_trajectory_chunks_on_plain_pairs(self, city):
        single = CoverageIndex(city.billboards, city.trajectories, lambda_m=100.0)
        streamed = CoverageIndex.from_trajectory_chunks(
            city.billboards, db_chunks(city.trajectories, 7), lambda_m=100.0
        )
        assert_same_coverage(single, streamed)

    def test_env_default_chunk_size(self, city, monkeypatch):
        monkeypatch.setenv(CHUNK_SIZE_ENV, "5")
        chunked = CoverageIndex(city.billboards, city.trajectories, lambda_m=100.0)
        monkeypatch.delenv(CHUNK_SIZE_ENV)
        single = CoverageIndex(city.billboards, city.trajectories, lambda_m=100.0)
        assert_same_coverage(single, chunked)

    @pytest.mark.parametrize("bad", ["0", "-3", "many"])
    def test_env_chunk_size_rejects_garbage(self, city, monkeypatch, bad):
        monkeypatch.setenv(CHUNK_SIZE_ENV, bad)
        with pytest.raises(ValueError, match=CHUNK_SIZE_ENV):
            CoverageIndex(city.billboards, city.trajectories, lambda_m=100.0)

    def test_chunk_size_argument_rejects_nonpositive(self, city):
        with pytest.raises(ValueError, match="chunk_size"):
            CoverageIndex(
                city.billboards, city.trajectories, lambda_m=100.0, chunk_size=0
            )


class TestBuildCoverage:
    def test_dispatches_in_memory_corpus(self, city):
        index = build_coverage(city.billboards, city.trajectories, chunk_size=7)
        single = CoverageIndex(city.billboards, city.trajectories)
        assert_same_coverage(single, index)

    def test_dispatches_chunk_iterable(self, city):
        index = build_coverage(city.billboards, db_chunks(city.trajectories, 7))
        single = CoverageIndex(city.billboards, city.trajectories)
        assert_same_coverage(single, index)

    def test_reserves_declared_id_space(self, city):
        total = len(city.trajectories)
        index = build_coverage(
            city.billboards,
            db_chunks(city.trajectories, 7),
            num_trajectories=total + 5,
        )
        assert index.num_trajectories == total + 5

    def test_rejects_understated_corpus_size(self, city):
        with pytest.raises(ValueError, match="num_trajectories"):
            build_coverage(
                city.billboards,
                db_chunks(city.trajectories, 7),
                num_trajectories=len(city.trajectories) - 1,
            )


class TestNycStream:
    def test_stream_build_matches_single_shot(self):
        stream = nyc_stream(20, 50, chunk_size=12, seed=11)
        streamed = CoverageIndex.from_trajectory_chunks(
            stream.billboards, stream.chunks(), lambda_m=100.0
        )
        merged = concat_chunks(stream.chunks())
        single = CoverageIndex(stream.billboards, merged, lambda_m=100.0)
        assert streamed.num_trajectories == 50
        assert_same_coverage(single, streamed)

    def test_stream_is_restart_deterministic(self):
        first = nyc_stream(20, 50, chunk_size=12, seed=11)
        second = nyc_stream(20, 50, chunk_size=12, seed=11)
        for a, b in zip(first.chunks(), second.chunks()):
            assert np.array_equal(a.all_points, b.all_points)
            assert np.array_equal(a.point_counts, b.point_counts)
        assert np.array_equal(
            first.billboards.locations, second.billboards.locations
        )


class TestJoinChunkBitIdentity:
    """Direct contract test for the shared radius-join step.

    ``_join_chunk`` is the single primitive both the one-shot and streaming
    builds call; its docstring claims chunk boundaries cannot change any
    (billboard, trajectory) coverage decision.  Joining the corpus as one
    chunk must therefore equal the concatenation of per-chunk joins with
    local ids shifted back to global ids — for every split point.
    """

    @pytest.mark.parametrize("exact_segments", [False, True])
    @pytest.mark.parametrize("split", [1, 13, 39])
    def test_split_join_matches_single_join(self, city, split, exact_segments):
        locations = city.billboards.locations
        n = len(locations)
        trajectories = city.trajectories
        whole = _CorpusChunk(trajectories.all_points, trajectories.point_counts)
        single = _join_chunk(locations, whole, n, 100.0, exact_segments)

        counts = trajectories.point_counts
        bounds = np.concatenate([[0], np.cumsum(counts)])
        parts = []
        for start, stop in ((0, split), (split, len(trajectories))):
            chunk = _CorpusChunk(
                trajectories.all_points[bounds[start] : bounds[stop]],
                counts[start:stop],
            )
            covered = _join_chunk(locations, chunk, n, 100.0, exact_segments)
            parts.append([ids + start for ids in covered])

        for billboard_id in range(n):
            merged = np.concatenate(
                [part[billboard_id] for part in parts]
            ).astype(np.int64)
            assert np.array_equal(single[billboard_id], merged)
