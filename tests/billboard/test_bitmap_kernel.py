"""Property tests: the packed-bitmap kernel is bit-identical to the id arrays.

Every query of :class:`CoverageIndex` has two implementations — the sorted
id-array kernel and the packed-bitmap kernel — and an adaptive dispatcher
that picks whichever is cheaper for the operand sizes.  These tests pin the
core guarantee that makes the dispatch legal: for arbitrary coverage and
arbitrary counter rows, both kernels return exactly the same integers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.bls import _partner_swap_delta
from repro.billboard.influence import (
    BITMAP_BUDGET_ENV,
    CoverageIndex,
    DEFAULT_BITMAP_BUDGET_MB,
    _resolve_bitmap_budget_mb,
)
from repro.core.advertiser import Advertiser
from repro.core.problem import MROAMInstance
from repro.utils import bitset
from repro.utils.rng import as_generator


def random_coverage(seed: int, num_billboards: int, num_trajectories: int):
    rng = as_generator(seed)
    lists = []
    for _ in range(num_billboards):
        size = int(rng.integers(0, num_trajectories + 1))
        lists.append(rng.choice(num_trajectories, size=size, replace=False).tolist())
    return lists


def force_bitmap(index: CoverageIndex) -> CoverageIndex:
    """Pin every adaptive dispatch decision to the bitmap kernel."""
    assert index.has_bitmap
    index._batch_prefers_bitmap = True
    index.bitmap_profitable_for = lambda *ids: True
    return index


def kernel_pair(seed: int, num_billboards: int = 14, num_trajectories: int = 90):
    """The same coverage as a bitmap-forced and a bitmap-disabled index."""
    lists = random_coverage(seed, num_billboards, num_trajectories)
    with_bitmap = force_bitmap(
        CoverageIndex.from_coverage_lists(
            lists, num_trajectories, bitmap_budget_mb=64.0
        )
    )
    ids_only = CoverageIndex.from_coverage_lists(
        lists, num_trajectories, bitmap_budget_mb=0.0
    )
    assert not ids_only.has_bitmap
    return with_bitmap, ids_only


def random_counts_row(seed: int, num_trajectories: int) -> np.ndarray:
    return as_generator(seed).integers(0, 4, size=num_trajectories).astype(np.int32)


class TestKernelEquality:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_influence_of_set(self, seed):
        with_bitmap, ids_only = kernel_pair(seed)
        rng = as_generator(seed + 1)
        for _ in range(10):
            size = int(rng.integers(0, with_bitmap.num_billboards + 1))
            ids = rng.choice(with_bitmap.num_billboards, size=size, replace=False)
            expected = ids_only.influence_of_set(ids.tolist())
            assert with_bitmap.influence_of_set(ids.tolist()) == expected
            assert with_bitmap.influence_of_set_ids(ids.tolist()) == expected

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_batch_add_gains(self, seed):
        with_bitmap, ids_only = kernel_pair(seed)
        counts = random_counts_row(seed + 2, with_bitmap.num_trajectories)
        expected = ids_only.batch_add_gains(counts)
        assert np.array_equal(with_bitmap.batch_add_gains(counts), expected)
        # Callers may hand over a pre-packed counts == 0 mask.
        free_bits = bitset.pack_bits(counts == 0)
        assert np.array_equal(
            with_bitmap.batch_add_gains(counts, free_bits=free_bits), expected
        )

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_batch_remove_losses(self, seed):
        with_bitmap, ids_only = kernel_pair(seed)
        counts = random_counts_row(seed + 3, with_bitmap.num_trajectories)
        expected = ids_only.batch_remove_losses(counts)
        assert np.array_equal(with_bitmap.batch_remove_losses(counts), expected)
        ones_bits = bitset.pack_bits(counts == 1)
        assert np.array_equal(
            with_bitmap.batch_remove_losses(counts, ones_bits=ones_bits), expected
        )

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_swap_delta(self, seed):
        with_bitmap, ids_only = kernel_pair(seed)
        counts = random_counts_row(seed + 4, with_bitmap.num_trajectories)
        rng = as_generator(seed + 5)
        for _ in range(10):
            removed, added = (
                int(i) for i in rng.integers(0, with_bitmap.num_billboards, size=2)
            )
            expected = ids_only.swap_delta(removed, added, counts)
            assert with_bitmap.swap_delta(removed, added, counts) == expected
            masks = (bitset.pack_bits(counts == 0), bitset.pack_bits(counts == 1))
            assert (
                with_bitmap.swap_delta(
                    removed, added, counts, free_bits=masks[0], ones_bits=masks[1]
                )
                == expected
            )

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_partner_swap_delta_in_bls(self, seed):
        """The BLS partner-side delta agrees across kernels on live allocations."""
        from repro.core.allocation import Allocation

        lists = random_coverage(seed, 10, 60)
        pairs = [
            (int(a), int(b))
            for a, b in as_generator(seed + 6).integers(0, 10, size=(8, 2))
        ]
        advertisers = [Advertiser(0, 5, 10.0), Advertiser(1, 4, 8.0)]
        deltas = {}
        for budget in (64.0, 0.0):
            coverage = CoverageIndex.from_coverage_lists(
                lists, 60, bitmap_budget_mb=budget
            )
            if budget:
                force_bitmap(coverage)
            allocation = Allocation(MROAMInstance(coverage, advertisers, gamma=0.5))
            assign_rng = as_generator(seed + 7)
            for billboard_id in range(coverage.num_billboards):
                if assign_rng.random() < 0.6:
                    allocation.assign(billboard_id, int(assign_rng.integers(0, 2)))
            deltas[budget] = [
                _partner_swap_delta(allocation, partner, lost, gained)
                for partner in (0, 1)
                for lost, gained in pairs
            ]
        assert deltas[64.0] == deltas[0.0]


class TestBudgetGating:
    def test_zero_budget_disables_bitmap(self):
        index = CoverageIndex.from_coverage_lists(
            [[0, 1], [1, 2]], 3, bitmap_budget_mb=0.0
        )
        assert not index.has_bitmap
        assert index.bits_of(0) is None
        assert index.influence_of_set([0, 1]) == 3

    def test_budget_smaller_than_bitmap_disables_it(self):
        index = CoverageIndex.from_coverage_lists(
            [[0], [1]], 2_000_000, bitmap_budget_mb=0.001
        )
        assert index.bitmap_bytes() > 0.001 * 1024 * 1024
        assert not index.has_bitmap

    def test_env_budget_is_read(self, monkeypatch):
        monkeypatch.setenv(BITMAP_BUDGET_ENV, "0")
        index = CoverageIndex.from_coverage_lists([[0, 1], [1, 2]], 3)
        assert not index.has_bitmap

    def test_env_budget_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv(BITMAP_BUDGET_ENV, "plenty")
        with pytest.raises(ValueError, match=BITMAP_BUDGET_ENV):
            _resolve_bitmap_budget_mb(None)

    def test_default_budget_without_env(self, monkeypatch):
        monkeypatch.delenv(BITMAP_BUDGET_ENV, raising=False)
        assert _resolve_bitmap_budget_mb(None) == DEFAULT_BITMAP_BUDGET_MB

    def test_packed_masks_follow_batch_preference(self, tiny_instance):
        from repro.core.allocation import Allocation

        allocation = Allocation(tiny_instance)
        coverage = tiny_instance.coverage
        masks = allocation.packed_masks(0)
        if coverage.has_bitmap and coverage.batch_prefers_bitmap:
            assert masks is not None
        else:
            assert masks is None


class TestBitsetPrimitives:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000), size=st.integers(0, 300))
    def test_pack_popcount_roundtrip(self, seed, size):
        mask = as_generator(seed).random(size) < 0.4
        packed = bitset.pack_bits(mask)
        assert packed.dtype == bitset.WORD_DTYPE
        assert len(packed) == bitset.num_words(size)
        assert bitset.popcount_total(packed) == int(mask.sum())
        assert np.array_equal(bitset.unpack_ids(packed, size), np.nonzero(mask)[0])

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 10_000), size=st.integers(1, 300))
    def test_pack_ids_matches_pack_bits(self, seed, size):
        rng = as_generator(seed)
        ids = np.unique(rng.integers(0, size, size=size // 2 + 1))
        mask = np.zeros(size, dtype=bool)
        mask[ids] = True
        assert np.array_equal(bitset.pack_ids(ids, size), bitset.pack_bits(mask))
