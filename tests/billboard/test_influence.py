"""Tests for the coverage influence model — the paper's I(S).

Includes hypothesis properties: monotonicity and submodularity of the
coverage influence, and consistency of the batch gain/loss passes with the
per-billboard definitions.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.billboard.influence import CoverageIndex
from repro.billboard.model import BillboardDB
from repro.trajectory.model import Trajectory, TrajectoryDB
from repro.utils.rng import as_generator


def geometric_index() -> CoverageIndex:
    """Three billboards on a line, three trajectories crossing them."""
    billboards = BillboardDB.from_locations(
        np.array([[0.0, 0.0], [300.0, 0.0], [600.0, 0.0]])
    )
    trajectories = TrajectoryDB(
        [
            Trajectory(0, np.array([[0.0, 50.0]])),  # near o0 only
            Trajectory(1, np.array([[0.0, 50.0], [300.0, 50.0]])),  # o0 and o1
            Trajectory(2, np.array([[900.0, 0.0]])),  # nobody
        ]
    )
    return CoverageIndex(billboards, trajectories, lambda_m=100.0)


def random_coverage(seed: int, num_billboards: int = 8, num_trajectories: int = 20) -> CoverageIndex:
    rng = as_generator(seed)
    lists = []
    for _ in range(num_billboards):
        size = int(rng.integers(0, num_trajectories))
        lists.append(rng.choice(num_trajectories, size=size, replace=False).tolist())
    return CoverageIndex.from_coverage_lists(lists, num_trajectories)


class TestGeometricCoverage:
    def test_meet_semantics(self):
        index = geometric_index()
        assert index.covered_by(0).tolist() == [0, 1]
        assert index.covered_by(1).tolist() == [1]
        assert index.covered_by(2).tolist() == []

    def test_individual_influences(self):
        index = geometric_index()
        assert index.individual_influences.tolist() == [2, 1, 0]

    def test_influence_of_set_is_union(self):
        index = geometric_index()
        assert index.influence_of_set([0, 1]) == 2  # t1 shared, not double counted
        assert index.influence_of_set([1, 2]) == 1
        assert index.influence_of_set([]) == 0

    def test_supply_double_counts_overlap(self):
        index = geometric_index()
        assert index.supply == 3  # 2 + 1 + 0, overlap intentionally double counted

    def test_total_reachable(self):
        index = geometric_index()
        assert index.total_reachable() == 2  # t2 is unreachable

    def test_rejects_nonpositive_lambda(self):
        billboards = BillboardDB.from_locations(np.array([[0.0, 0.0]]))
        trajectories = TrajectoryDB([Trajectory(0, np.array([[0.0, 0.0]]))])
        with pytest.raises(ValueError, match="lambda"):
            CoverageIndex(billboards, trajectories, lambda_m=0.0)

    def test_lambda_exactly_on_boundary_counts(self):
        billboards = BillboardDB.from_locations(np.array([[0.0, 0.0]]))
        trajectories = TrajectoryDB([Trajectory(0, np.array([[100.0, 0.0]]))])
        index = CoverageIndex(billboards, trajectories, lambda_m=100.0)
        assert index.influence_of(0) == 1

    def test_larger_lambda_covers_no_less(self):
        billboards = BillboardDB.from_locations(np.array([[0.0, 0.0], [500.0, 0.0]]))
        trajectories = TrajectoryDB(
            [Trajectory(i, np.array([[float(100 * i), 30.0]])) for i in range(6)]
        )
        small = CoverageIndex(billboards, trajectories, lambda_m=50.0)
        large = CoverageIndex(billboards, trajectories, lambda_m=150.0)
        for billboard_id in range(2):
            assert set(small.covered_by(billboard_id)) <= set(large.covered_by(billboard_id))


class TestFromCoverageLists:
    def test_explicit_lists(self):
        index = CoverageIndex.from_coverage_lists([[0, 1], [1, 2], []], num_trajectories=3)
        assert index.num_billboards == 3
        assert index.influence_of_set([0, 1]) == 3

    def test_duplicates_collapse(self):
        index = CoverageIndex.from_coverage_lists([[0, 0, 1]], num_trajectories=2)
        assert index.influence_of(0) == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            CoverageIndex.from_coverage_lists([[3]], num_trajectories=3)


class TestDistributions:
    def test_influence_distribution_descending_normalized(self):
        index = random_coverage(1)
        dist = index.influence_distribution()
        assert dist[0] == pytest.approx(1.0)
        assert np.all(np.diff(dist) <= 0)
        assert np.all((0 <= dist) & (dist <= 1))

    def test_impression_curve_monotone(self):
        index = random_coverage(2)
        fractions = [0.0, 0.25, 0.5, 0.75, 1.0]
        curve = index.impression_curve(fractions)
        assert curve[0] == 0.0
        assert np.all(np.diff(curve) >= 0)
        assert curve[-1] == pytest.approx(index.total_reachable() / index.num_trajectories)

    def test_impression_curve_rejects_bad_fraction(self):
        index = random_coverage(3)
        with pytest.raises(ValueError, match="fractions"):
            index.impression_curve([1.5])


class TestBatchPasses:
    def test_batch_add_gains_matches_definition(self):
        index = random_coverage(4)
        counts = np.zeros(index.num_trajectories, dtype=np.int32)
        counts[index.covered_by(0)] += 1  # pretend billboard 0 is assigned
        gains = index.batch_add_gains(counts)
        for billboard_id in range(index.num_billboards):
            covered = index.covered_by(billboard_id)
            expected = int(np.count_nonzero(counts[covered] == 0))
            assert gains[billboard_id] == expected

    def test_batch_remove_losses_matches_definition(self):
        index = random_coverage(5)
        counts = np.zeros(index.num_trajectories, dtype=np.int32)
        for billboard_id in (0, 1, 2):
            counts[index.covered_by(billboard_id)] += 1
        losses = index.batch_remove_losses(counts)
        for billboard_id in range(index.num_billboards):
            covered = index.covered_by(billboard_id)
            expected = int(np.count_nonzero(counts[covered] == 1))
            assert losses[billboard_id] == expected

    def test_empty_coverage_batches(self):
        index = CoverageIndex.from_coverage_lists([[], []], num_trajectories=3)
        counts = np.zeros(3, dtype=np.int32)
        assert index.batch_add_gains(counts).tolist() == [0, 0]
        assert index.batch_remove_losses(counts).tolist() == [0, 0]


class TestCoverageProperties:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_influence_monotone_under_union(self, seed):
        index = random_coverage(seed)
        rng = as_generator(seed + 1)
        subset = [b for b in range(index.num_billboards) if rng.random() < 0.4]
        superset = sorted(
            set(subset) | {int(b) for b in rng.integers(0, index.num_billboards, size=3)}
        )
        assert index.influence_of_set(subset) <= index.influence_of_set(superset)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_influence_submodular(self, seed):
        # I(A ∪ {o}) − I(A) ≥ I(B ∪ {o}) − I(B) for A ⊆ B, o ∉ B.
        index = random_coverage(seed)
        rng = as_generator(seed + 2)
        ids = list(range(index.num_billboards))
        rng.shuffle(ids)
        o = ids[0]
        small = sorted(ids[1:3])
        big = sorted(ids[1:6])
        gain_small = index.influence_of_set(small + [o]) - index.influence_of_set(small)
        gain_big = index.influence_of_set(big + [o]) - index.influence_of_set(big)
        assert gain_small >= gain_big

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_subadditivity(self, seed):
        index = random_coverage(seed)
        subset = list(range(index.num_billboards))
        union = index.influence_of_set(subset)
        total = sum(index.influence_of(b) for b in subset)
        assert union <= total
        assert union <= index.num_trajectories
