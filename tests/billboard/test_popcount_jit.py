"""The optional numba popcount path: opt-in, fallback, and bit-identity.

numba is not a dependency — most of this file runs without it, pinning the
env-var opt-in, the graceful degradation to numpy, and (crucially) the SWAR
formula the jitted kernels use via its pure-numpy reference.  The jit
equality tests run only where numba is importable (the CI with-numba leg).
"""

import importlib.util
import logging

import numpy as np
import pytest

from repro.billboard import bitmap_store, popcount_jit
from repro.utils.rng import as_generator

HAS_NUMBA = importlib.util.find_spec("numba") is not None


@pytest.fixture(autouse=True)
def fresh_resolution(monkeypatch):
    """Each test resolves the kernels from its own environment."""
    monkeypatch.delenv(popcount_jit.NUMBA_ENV, raising=False)
    popcount_jit.reset()
    yield
    popcount_jit.reset()


class TestOptIn:
    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_values(self, monkeypatch, value):
        monkeypatch.setenv(popcount_jit.NUMBA_ENV, value)
        assert popcount_jit.requested() is True

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "2"])
    def test_falsy_values(self, monkeypatch, value):
        monkeypatch.setenv(popcount_jit.NUMBA_ENV, value)
        assert popcount_jit.requested() is False

    def test_unset_is_off(self):
        assert popcount_jit.requested() is False
        assert popcount_jit.get_kernels() is None
        assert popcount_jit.enabled() is False

    @pytest.mark.skipif(HAS_NUMBA, reason="needs a numba-less host")
    def test_requested_but_missing_falls_back(self, monkeypatch, caplog):
        monkeypatch.setenv(popcount_jit.NUMBA_ENV, "1")
        with caplog.at_level(
            logging.WARNING, logger="repro.billboard.popcount_jit"
        ):
            assert popcount_jit.get_kernels() is None
            assert popcount_jit.get_kernels() is None  # resolved once
        assert popcount_jit.enabled() is False
        warnings = [
            record
            for record in caplog.records
            if "numba is not importable" in record.getMessage()
        ]
        assert len(warnings) == 1


class TestSwarReference:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_bitwise_count(self, seed):
        rng = as_generator(seed)
        words = rng.integers(0, 2**64, size=256, dtype=np.uint64)
        expected = np.bitwise_count(words).astype(np.int64)
        assert np.array_equal(popcount_jit.swar_popcount_reference(words), expected)

    def test_edge_words(self):
        words = np.array([0, 1, 2**63, 2**64 - 1, 0x5555555555555555], dtype=np.uint64)
        assert popcount_jit.swar_popcount_reference(words).tolist() == [
            0,
            1,
            1,
            64,
            32,
        ]


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
class TestJitKernels:
    @pytest.fixture()
    def kernels(self, monkeypatch):
        monkeypatch.setenv(popcount_jit.NUMBA_ENV, "1")
        popcount_jit.reset()
        kernels = popcount_jit.get_kernels()
        assert kernels is not None
        return kernels

    def test_masked_rows(self, kernels):
        rng = as_generator(0)
        block = rng.integers(0, 2**64, size=(20, 9), dtype=np.uint64)
        mask = rng.integers(0, 2**64, size=9, dtype=np.uint64)
        expected = np.bitwise_count(block & mask).sum(axis=1).astype(np.int64)
        assert np.array_equal(kernels.masked_rows(block, mask), expected)

    def test_union_popcount(self, kernels):
        rng = as_generator(1)
        block = rng.integers(0, 2**64, size=(7, 5), dtype=np.uint64)
        union = np.zeros(5, dtype=np.uint64)
        total = kernels.union_popcount(block, union)
        expected_union = np.bitwise_or.reduce(block, axis=0)
        assert np.array_equal(union, expected_union)
        assert total == int(np.bitwise_count(expected_union).sum())

    def test_masked_total(self, kernels):
        rng = as_generator(2)
        row = rng.integers(0, 2**64, size=33, dtype=np.uint64)
        mask = rng.integers(0, 2**64, size=33, dtype=np.uint64)
        assert kernels.masked_total(row, mask) == int(
            np.bitwise_count(row & mask).sum()
        )

    def test_store_helpers_agree_with_numpy(self, monkeypatch):
        """block_masked_popcounts / masked_total dispatch to the jit path and
        must match the pure-numpy result bit for bit."""
        rng = as_generator(3)
        block = rng.integers(0, 2**64, size=(16, 4), dtype=np.uint64)
        mask = rng.integers(0, 2**64, size=4, dtype=np.uint64)

        monkeypatch.setenv(popcount_jit.NUMBA_ENV, "1")
        popcount_jit.reset()
        jit_rows = bitmap_store.block_masked_popcounts(block.copy(), mask)
        jit_total = bitmap_store.masked_total(block[0].copy(), mask)

        monkeypatch.delenv(popcount_jit.NUMBA_ENV)
        popcount_jit.reset()
        numpy_rows = bitmap_store.block_masked_popcounts(block.copy(), mask)
        numpy_total = bitmap_store.masked_total(block[0].copy(), mask)

        assert np.array_equal(jit_rows, numpy_rows)
        assert jit_total == numpy_total
