"""Tests for the segment-accurate coverage mode."""

import numpy as np
import pytest

from repro.billboard.influence import CoverageIndex
from repro.billboard.model import BillboardDB
from repro.trajectory.model import Trajectory, TrajectoryDB


def sparse_pass_by():
    """A trajectory whose *path* passes the billboard but whose samples are
    far away: two samples 1 km apart, the straight path passing within 50 m
    of the billboard."""
    billboards = BillboardDB.from_locations(np.array([[500.0, 50.0]]))
    trajectories = TrajectoryDB(
        [Trajectory(0, np.array([[0.0, 0.0], [1_000.0, 0.0]]))]
    )
    return billboards, trajectories


class TestExactSegments:
    def test_sampled_mode_misses_between_samples(self):
        billboards, trajectories = sparse_pass_by()
        sampled = CoverageIndex(billboards, trajectories, lambda_m=100.0)
        assert sampled.influence_of(0) == 0  # both samples are ~500 m away

    def test_segment_mode_catches_the_pass_by(self):
        billboards, trajectories = sparse_pass_by()
        exact = CoverageIndex(
            billboards, trajectories, lambda_m=100.0, exact_segments=True
        )
        assert exact.covered_by(0).tolist() == [0]

    def test_segment_mode_respects_lambda(self):
        billboards, trajectories = sparse_pass_by()
        # The path's closest approach is 50 m; λ = 40 m must still miss.
        tight = CoverageIndex(
            billboards, trajectories, lambda_m=40.0, exact_segments=True
        )
        assert tight.influence_of(0) == 0

    def test_segment_coverage_is_superset_of_sampled(self):
        from repro.datasets.nyc import generate_nyc

        city = generate_nyc(n_billboards=30, n_trajectories=200, seed=3)
        sampled = CoverageIndex(city.billboards, city.trajectories, lambda_m=100.0)
        exact = CoverageIndex(
            city.billboards, city.trajectories, lambda_m=100.0, exact_segments=True
        )
        for billboard_id in range(30):
            sampled_set = set(sampled.covered_by(billboard_id).tolist())
            exact_set = set(exact.covered_by(billboard_id).tolist())
            assert sampled_set <= exact_set

    def test_modes_agree_when_sampling_is_dense(self):
        # With sample spacing far below λ the two modes coincide on almost
        # every billboard; exact mode can only add trajectories.
        billboards = BillboardDB.from_locations(np.array([[100.0, 30.0]]))
        points = np.column_stack([np.linspace(0.0, 200.0, 41), np.zeros(41)])  # 5 m gaps
        trajectories = TrajectoryDB([Trajectory(0, points)])
        sampled = CoverageIndex(billboards, trajectories, lambda_m=50.0)
        exact = CoverageIndex(billboards, trajectories, lambda_m=50.0, exact_segments=True)
        assert sampled.covered_by(0).tolist() == exact.covered_by(0).tolist() == [0]

    def test_single_point_trajectories_supported(self):
        billboards = BillboardDB.from_locations(np.array([[0.0, 0.0]]))
        trajectories = TrajectoryDB([Trajectory(0, np.array([[30.0, 40.0]]))])
        exact = CoverageIndex(billboards, trajectories, lambda_m=60.0, exact_segments=True)
        assert exact.influence_of(0) == 1
