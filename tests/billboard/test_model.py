"""Tests for the billboard inventory model."""

import numpy as np
import pytest

from repro.billboard.model import Billboard, BillboardDB
from repro.spatial.geometry import Point


class TestBillboardDB:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one billboard"):
            BillboardDB([])

    def test_rejects_non_dense_ids(self):
        with pytest.raises(ValueError, match="dense"):
            BillboardDB([Billboard(5, Point(0.0, 0.0))])

    def test_from_locations(self):
        db = BillboardDB.from_locations(np.array([[0.0, 0.0], [10.0, 20.0]]), ["a", "b"])
        assert len(db) == 2
        assert db[1].location == Point(10.0, 20.0)
        assert db[1].label == "b"

    def test_from_locations_default_labels(self):
        db = BillboardDB.from_locations(np.array([[1.0, 2.0]]))
        assert db[0].label == ""

    def test_from_locations_label_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            BillboardDB.from_locations(np.array([[0.0, 0.0]]), ["a", "b"])

    def test_getitem_bounds(self):
        db = BillboardDB.from_locations(np.array([[0.0, 0.0]]))
        with pytest.raises(IndexError):
            db[1]

    def test_iteration_and_locations(self):
        db = BillboardDB.from_locations(np.array([[0.0, 0.0], [5.0, 5.0]]))
        assert [b.billboard_id for b in db] == [0, 1]
        assert db.locations.shape == (2, 2)

    def test_bounding_box(self):
        db = BillboardDB.from_locations(np.array([[0.0, 0.0], [10.0, 4.0]]))
        box = db.bounding_box()
        assert box.max_x == 10.0
        assert box.max_y == 4.0
