"""Storage tiers of the packed-bitmap kernel: selection, identity, cleanup.

The memmap-shard tier must be bit-identical to the in-RAM tier on every
batch kernel (full and candidate-restricted), the tier decision must follow
the budget/storage configuration exactly once per index, and spilled shard
files must not outlive their store.
"""

import gc
import logging

import numpy as np
import pytest

from repro.billboard import bitmap_store
from repro.billboard.influence import CoverageIndex
from repro.utils.rng import as_generator

NUM_TRAJECTORIES = 500
NUM_BILLBOARDS = 12


def base_csr(seed: int = 5):
    rng = as_generator(seed)
    lists = [
        np.sort(
            rng.choice(
                NUM_TRAJECTORIES,
                size=int(rng.integers(0, NUM_TRAJECTORIES // 2)),
                replace=False,
            )
        )
        for _ in range(NUM_BILLBOARDS)
    ]
    index = CoverageIndex.from_coverage_lists(
        [ids.tolist() for ids in lists], NUM_TRAJECTORIES
    )
    return index.to_arrays()


def make_index(storage: str, budget_mb: float = 64.0) -> CoverageIndex:
    flat, offsets = base_csr()
    index = CoverageIndex.from_flat_arrays(
        flat,
        offsets,
        NUM_TRAJECTORIES,
        bitmap_budget_mb=budget_mb,
        bitmap_storage=storage,
    )
    index._batch_prefers_bitmap = True  # measure the bitmap kernels
    return index


def consistent_counts(index: CoverageIndex, owned) -> np.ndarray:
    counts = np.zeros(index.num_trajectories, dtype=np.int64)
    for billboard_id in owned:
        counts[index.covered_by(int(billboard_id))] += 1
    return counts


class TestMemmapEqualsRam:
    """The four batch kernels agree across tiers, full and restricted."""

    @pytest.fixture()
    def pair(self, monkeypatch, tmp_path):
        monkeypatch.setenv(bitmap_store.SPILL_DIR_ENV, str(tmp_path))
        ram = make_index("ram")
        memmap = make_index("memmap")
        assert ram.bitmap_tier == "ram"
        assert memmap.bitmap_tier == "memmap"
        return ram, memmap

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_all_batch_kernels(self, pair, seed):
        ram, memmap = pair
        rng = as_generator(seed)
        owned = rng.choice(NUM_BILLBOARDS, size=4, replace=False)
        counts = consistent_counts(ram, owned)
        removed = int(owned[0])
        candidates = np.sort(rng.choice(NUM_BILLBOARDS, size=6, replace=False))

        for kwargs in ({}, {"candidate_ids": candidates}):
            assert np.array_equal(
                ram.batch_add_gains(counts, **kwargs),
                memmap.batch_add_gains(counts, **kwargs),
            )
            assert np.array_equal(
                ram.batch_add_gains_without(counts, removed, **kwargs),
                memmap.batch_add_gains_without(counts, removed, **kwargs),
            )
            assert np.array_equal(
                ram.batch_remove_losses(counts, **kwargs),
                memmap.batch_remove_losses(counts, **kwargs),
            )
        assert np.array_equal(
            ram.batch_swap_deltas(removed, candidates, counts),
            memmap.batch_swap_deltas(removed, candidates, counts),
        )

    def test_union_and_rows(self, pair):
        ram, memmap = pair
        ids = list(range(0, NUM_BILLBOARDS, 2))
        assert ram.influence_of_set(ids) == memmap.influence_of_set(ids)
        for billboard_id in range(NUM_BILLBOARDS):
            assert np.array_equal(
                np.asarray(ram.bits_of(billboard_id)),
                np.asarray(memmap.bits_of(billboard_id)),
            )


class TestTierSelection:
    def test_ram_within_budget(self):
        assert make_index("ram").bitmap_tier == "ram"
        assert make_index("auto").bitmap_tier == "ram"

    def test_explicit_memmap_is_silent_even_without_spill_dir(
        self, monkeypatch, caplog
    ):
        monkeypatch.delenv(bitmap_store.SPILL_DIR_ENV, raising=False)
        monkeypatch.delenv("REPRO_COVERAGE_CACHE", raising=False)
        with caplog.at_level(logging.WARNING, logger="repro.billboard.influence"):
            index = make_index("memmap")
            assert index.bitmap_tier == "memmap"
        assert caplog.records == []

    def test_auto_spills_past_budget_with_dir(self, monkeypatch, tmp_path, caplog):
        monkeypatch.setenv(bitmap_store.SPILL_DIR_ENV, str(tmp_path))
        with caplog.at_level(logging.WARNING, logger="repro.billboard.influence"):
            index = make_index("auto", budget_mb=1e-9)
            assert index.bitmap_tier == "memmap"
        spills = [
            record
            for record in caplog.records
            if "bitmap spilled to memmap tier" in record.getMessage()
        ]
        assert len(spills) == 1
        message = spills[0].getMessage()
        # The warn names the chosen tier and the budget that triggered it.
        assert "memmap" in message
        assert "REPRO_BITMAP_BUDGET_MB" in message

    def test_auto_skips_past_budget_without_dir(self, monkeypatch, caplog):
        monkeypatch.delenv(bitmap_store.SPILL_DIR_ENV, raising=False)
        monkeypatch.delenv("REPRO_COVERAGE_CACHE", raising=False)
        with caplog.at_level(logging.WARNING, logger="repro.billboard.influence"):
            index = make_index("auto", budget_mb=1e-9)
            assert index.bitmap_tier is None
        skips = [
            record
            for record in caplog.records
            if "bitmap kernel skipped" in record.getMessage()
        ]
        assert len(skips) == 1
        # The warn names the budget, the id-array fallback, and the spill knobs.
        message = skips[0].getMessage()
        assert "REPRO_BITMAP_BUDGET_MB" in message
        assert "id-array" in message
        assert bitmap_store.SPILL_DIR_ENV in message

    def test_none_storage_disables_silently(self, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.billboard.influence"):
            index = make_index("none")
            assert index.bitmap_tier is None
        assert caplog.records == []

    def test_storage_env_default(self, monkeypatch, tmp_path):
        monkeypatch.setenv(bitmap_store.SPILL_DIR_ENV, str(tmp_path))
        monkeypatch.setenv(bitmap_store.STORAGE_ENV, "memmap")
        flat, offsets = base_csr()
        index = CoverageIndex.from_flat_arrays(
            flat, offsets, NUM_TRAJECTORIES, bitmap_budget_mb=64.0
        )
        assert index.bitmap_tier == "memmap"

    def test_invalid_storage_rejected(self):
        with pytest.raises(ValueError, match="storage"):
            make_index("floppy")


class TestShardLifecycle:
    def test_spilled_shards_cleaned_up_on_gc(self, monkeypatch, tmp_path):
        monkeypatch.setenv(bitmap_store.SPILL_DIR_ENV, str(tmp_path))
        index = make_index("memmap")
        index._ensure_bitmap()
        shard_files = list(tmp_path.rglob("*.u64"))
        assert shard_files  # shards exist while the store is alive
        del index
        gc.collect()
        assert all(not path.exists() for path in shard_files)

    def test_shared_export_attach_memmap_tier(self, monkeypatch, tmp_path):
        monkeypatch.setenv(bitmap_store.SPILL_DIR_ENV, str(tmp_path))
        index = make_index("memmap")
        ids = list(range(0, NUM_BILLBOARDS, 3))
        with index.to_shared() as shared:
            spec = shared.spec
            assert spec.bitmap is not None
            assert spec.bitmap.tier == "memmap"
            assert spec.bitmap.paths  # shipped as paths, not shm segments
            attached = CoverageIndex.attach_shared(spec)
            assert attached.bitmap_tier == "memmap"
            assert attached.influence_of_set(ids) == index.influence_of_set(ids)
        # The attacher never deletes the owner's shard files.
        assert index.influence_of_set(ids) == index.influence_of_set_ids(ids)
