"""Tests for the digital-billboard (time-slot) extension."""

import numpy as np
import pytest

from repro.billboard.digital import DigitalExpansion, TimeSlot, day_slots, expand_digital
from repro.billboard.influence import CoverageIndex
from repro.billboard.model import BillboardDB
from repro.trajectory.model import Trajectory, TrajectoryDB

HOUR = 3600.0


def timed_corpus():
    """One billboard at origin; three trips at distinct times of day."""
    billboards = BillboardDB.from_locations(np.array([[0.0, 0.0]]))
    trajectories = TrajectoryDB(
        [
            Trajectory(0, np.array([[10.0, 0.0]]), travel_time=HOUR, start_time=7 * HOUR),
            Trajectory(1, np.array([[20.0, 0.0]]), travel_time=HOUR, start_time=13 * HOUR),
            Trajectory(2, np.array([[5_000.0, 0.0]]), travel_time=HOUR, start_time=7 * HOUR),
        ]
    )
    coverage = CoverageIndex(billboards, trajectories, lambda_m=100.0)
    return coverage, trajectories


class TestTimeSlot:
    def test_validation(self):
        with pytest.raises(ValueError, match="slot"):
            TimeSlot(0, 5.0, 5.0)
        with pytest.raises(ValueError, match="slot"):
            TimeSlot(0, -1.0, 10.0)

    def test_label(self):
        assert TimeSlot(0, 6 * HOUR, 12 * HOUR).label() == "06:00-12:00"

    def test_day_slots_partition(self):
        slots = day_slots(4)
        assert len(slots) == 4
        assert slots[0].start_s == 0.0
        assert slots[-1].end_s == 86_400.0
        for earlier, later in zip(slots, slots[1:]):
            assert earlier.end_s == later.start_s

    def test_day_slots_validation(self):
        with pytest.raises(ValueError, match="count"):
            day_slots(0)


class TestExpandDigital:
    def test_slot_restriction(self):
        coverage, trajectories = timed_corpus()
        expansion = expand_digital(coverage, trajectories, slots=4)  # 6h slots
        # Physical panel covers trips 0 and 1 (trip 2 is out of range).
        assert coverage.covered_by(0).tolist() == [0, 1]
        morning = expansion.virtual_id(0, 1)  # 06:00-12:00
        afternoon = expansion.virtual_id(0, 2)  # 12:00-18:00
        night = expansion.virtual_id(0, 0)  # 00:00-06:00
        assert expansion.coverage.covered_by(morning).tolist() == [0]
        assert expansion.coverage.covered_by(afternoon).tolist() == [1]
        assert expansion.coverage.covered_by(night).tolist() == []

    def test_slot_union_recovers_physical_coverage(self):
        coverage, trajectories = timed_corpus()
        expansion = expand_digital(coverage, trajectories, slots=6)
        virtual_ids = [expansion.virtual_id(0, s) for s in range(6)]
        assert expansion.coverage.influence_of_set(virtual_ids) == coverage.influence_of(0)

    def test_mapping_arrays(self):
        coverage, trajectories = timed_corpus()
        expansion = expand_digital(coverage, trajectories, slots=3)
        assert expansion.num_virtual == 3
        assert expansion.physical_of.tolist() == [0, 0, 0]
        assert expansion.slot_of.tolist() == [0, 1, 2]
        assert "panel 0" in expansion.describe_virtual(1)

    def test_trip_spanning_slot_boundary_counts_in_both(self):
        billboards = BillboardDB.from_locations(np.array([[0.0, 0.0]]))
        trajectories = TrajectoryDB(
            [Trajectory(0, np.array([[0.0, 0.0]]), travel_time=2 * HOUR, start_time=11 * HOUR)]
        )
        coverage = CoverageIndex(billboards, trajectories, lambda_m=50.0)
        expansion = expand_digital(coverage, trajectories, slots=2)  # 12h slots
        assert expansion.coverage.covered_by(expansion.virtual_id(0, 0)).tolist() == [0]
        assert expansion.coverage.covered_by(expansion.virtual_id(0, 1)).tolist() == [0]

    def test_midnight_wrap(self):
        billboards = BillboardDB.from_locations(np.array([[0.0, 0.0]]))
        trajectories = TrajectoryDB(
            [Trajectory(0, np.array([[0.0, 0.0]]), travel_time=2 * HOUR, start_time=23 * HOUR)]
        )
        coverage = CoverageIndex(billboards, trajectories, lambda_m=50.0)
        expansion = expand_digital(coverage, trajectories, slots=day_slots(24))
        # Active 23:00-24:00 and (wrapped) 00:00-01:00.
        assert expansion.coverage.covered_by(expansion.virtual_id(0, 23)).tolist() == [0]
        assert expansion.coverage.covered_by(expansion.virtual_id(0, 0)).tolist() == [0]
        assert expansion.coverage.covered_by(expansion.virtual_id(0, 12)).tolist() == []

    def test_mismatched_corpus_rejected(self):
        coverage, _ = timed_corpus()
        other = TrajectoryDB([Trajectory(0, np.array([[0.0, 0.0]]))])
        with pytest.raises(ValueError, match="corpus"):
            expand_digital(coverage, other, slots=2)

    def test_virtual_id_bounds(self):
        coverage, trajectories = timed_corpus()
        expansion = expand_digital(coverage, trajectories, slots=2)
        with pytest.raises(IndexError):
            expansion.virtual_id(0, 2)

    def test_slot_supply_sums_virtual_influences(self):
        coverage, trajectories = timed_corpus()
        expansion = expand_digital(coverage, trajectories, slots=4)
        total = sum(expansion.slot_supply(s) for s in range(4))
        assert total == expansion.coverage.supply
        assert expansion.slot_supply(1) == 1  # the 07:00 trip
        assert expansion.slot_supply(0) == 0


class TestDigitalMROAM:
    def test_solvers_run_on_virtual_inventory(self):
        from repro.core.advertiser import Advertiser
        from repro.core.problem import MROAMInstance
        from repro.algorithms.registry import make_solver

        coverage, trajectories = timed_corpus()
        expansion = expand_digital(coverage, trajectories, slots=4)
        instance = MROAMInstance(
            expansion.coverage, [Advertiser(0, 1, 5.0), Advertiser(1, 1, 4.0)], gamma=0.5
        )
        result = make_solver("bls", seed=0, restarts=2).solve(instance)
        # Two time-disjoint trips: both one-trajectory demands satisfiable by
        # the same physical panel in different slots.
        assert result.total_regret == pytest.approx(0.0)


class TestDepartures:
    def test_rush_hour_departures_in_range(self):
        from repro.trajectory.departures import rush_hour_departures

        times = rush_hour_departures(500, seed=1)
        assert times.shape == (500,)
        assert np.all((0 <= times) & (times < 86_400.0))

    def test_rush_hours_are_peaks(self):
        from repro.trajectory.departures import rush_hour_departures

        times = rush_hour_departures(5_000, seed=2)
        morning = np.sum(np.abs(times - 8 * HOUR) < HOUR)
        midnight = np.sum(times < 2 * HOUR)
        assert morning > 3 * max(midnight, 1)

    def test_validation(self):
        from repro.trajectory.departures import rush_hour_departures

        with pytest.raises(ValueError, match="count"):
            rush_hour_departures(-1)
