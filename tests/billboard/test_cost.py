"""Tests for the billboard cost model."""

import numpy as np
import pytest

from repro.billboard.cost import billboard_cost, cost_vector
from repro.billboard.influence import CoverageIndex


def test_billboard_cost_formula():
    assert billboard_cost(100, tau=1.0) == 10
    assert billboard_cost(100, tau=0.9) == 9
    assert billboard_cost(5, tau=1.1) == 0  # floor


def test_billboard_cost_validation():
    with pytest.raises(ValueError, match="influence"):
        billboard_cost(-1, tau=1.0)
    with pytest.raises(ValueError, match="tau"):
        billboard_cost(10, tau=1.5)


def test_cost_vector_bounds_and_reproducibility():
    index = CoverageIndex.from_coverage_lists(
        [list(range(50)), list(range(100)), []], num_trajectories=100
    )
    costs = cost_vector(index, seed=3)
    assert costs.shape == (3,)
    assert costs[2] == 0
    influences = index.individual_influences
    assert np.all(costs >= np.floor(0.9 * influences / 10.0))
    assert np.all(costs <= np.floor(1.1 * influences / 10.0))
    assert np.array_equal(costs, cost_vector(index, seed=3))
