"""Restricted-vs-full batch-kernel equality (the PR's bit-identical contract).

Every batch pass accepts ``candidate_ids`` and must return exactly the full
pass sliced to those rows — for *any* subset (empty, full, unordered, with
duplicates), under both kernels (packed bitmap and id-array), because the
dirty sweep engine's correctness proof reduces restricted scans to full
scans through this equality.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.billboard.influence import BITMAP_BUDGET_ENV, CoverageIndex

SEEDS = (0, 1, 7, 23, 99)


@pytest.fixture(params=["bitmap", "id"])
def kernel_env(request, monkeypatch):
    """Force one coverage kernel; indices must be built inside the test
    because the bitmap budget is read at ``CoverageIndex`` construction."""
    if request.param == "id":
        monkeypatch.setenv(BITMAP_BUDGET_ENV, "0")
    else:
        monkeypatch.delenv(BITMAP_BUDGET_ENV, raising=False)
    return request.param


def _random_index(rng: np.random.Generator) -> tuple[CoverageIndex, np.ndarray]:
    num_billboards = int(rng.integers(1, 40))
    num_trajectories = int(rng.integers(1, 200))
    covered = [
        rng.choice(
            num_trajectories, size=int(rng.integers(0, num_trajectories + 1)),
            replace=False,
        )
        for _ in range(num_billboards)
    ]
    index = CoverageIndex.from_coverage_lists(covered, num_trajectories)
    counts = rng.integers(0, 3, size=num_trajectories).astype(np.int64)
    return index, counts


def _subsets(rng: np.random.Generator, num_billboards: int) -> list[np.ndarray]:
    """Full, empty, a random strict subset, and an unordered-with-duplicates
    id array — the contract holds for all of them."""
    return [
        np.arange(num_billboards),
        np.empty(0, dtype=np.int64),
        rng.choice(
            num_billboards,
            size=int(rng.integers(0, num_billboards + 1)),
            replace=False,
        ),
        rng.integers(0, num_billboards, size=int(rng.integers(1, 2 * num_billboards + 1))),
    ]


class TestRestrictedEqualsFullSlice:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_batch_add_gains(self, seed, kernel_env):
        rng = np.random.default_rng(seed)
        index, counts = _random_index(rng)
        full = index.batch_add_gains(counts)
        for subset in _subsets(rng, index.num_billboards):
            restricted = index.batch_add_gains(counts, candidate_ids=subset)
            assert restricted.dtype == np.int64
            assert np.array_equal(restricted, full[subset])

    @pytest.mark.parametrize("seed", SEEDS)
    def test_batch_add_gains_without(self, seed, kernel_env):
        rng = np.random.default_rng(seed)
        index, counts = _random_index(rng)
        removed = int(rng.integers(0, index.num_billboards))
        full = index.batch_add_gains_without(counts, removed)
        for subset in _subsets(rng, index.num_billboards):
            restricted = index.batch_add_gains_without(
                counts, removed, candidate_ids=subset
            )
            assert np.array_equal(restricted, full[subset])

    @pytest.mark.parametrize("seed", SEEDS)
    def test_batch_remove_losses(self, seed, kernel_env):
        rng = np.random.default_rng(seed)
        index, counts = _random_index(rng)
        full = index.batch_remove_losses(counts)
        for subset in _subsets(rng, index.num_billboards):
            restricted = index.batch_remove_losses(counts, candidate_ids=subset)
            assert np.array_equal(restricted, full[subset])

    @pytest.mark.parametrize("seed", SEEDS)
    def test_batch_swap_deltas(self, seed, kernel_env):
        """One removed billboard against many added candidates equals the
        per-candidate ``swap_delta`` loop, bit for bit."""
        rng = np.random.default_rng(seed)
        index, counts = _random_index(rng)
        removed = int(rng.integers(0, index.num_billboards))
        for subset in _subsets(rng, index.num_billboards):
            batched = index.batch_swap_deltas(removed, subset, counts)
            looped = np.array(
                [index.swap_delta(removed, int(a), counts) for a in subset],
                dtype=np.int64,
            )
            assert batched.dtype == np.int64
            assert np.array_equal(batched, looped)

    def test_supplied_masks_match_packed_on_demand(self, kernel_env):
        """Callers that maintain packed masks incrementally must get the same
        restricted answers as on-demand packing."""
        from repro.utils import bitset

        rng = np.random.default_rng(5)
        index, counts = _random_index(rng)
        subset = np.arange(0, index.num_billboards, 2)
        free_bits = bitset.pack_bits(counts == 0)
        ones_bits = bitset.pack_bits(counts == 1)
        assert np.array_equal(
            index.batch_add_gains(counts, free_bits=free_bits, candidate_ids=subset),
            index.batch_add_gains(counts, candidate_ids=subset),
        )
        removed = 0
        assert np.array_equal(
            index.batch_add_gains_without(
                counts,
                removed,
                free_bits=free_bits,
                ones_bits=ones_bits,
                candidate_ids=subset,
            ),
            index.batch_add_gains_without(counts, removed, candidate_ids=subset),
        )


class TestScratchBuffer:
    def test_scratch_reused_and_grows(self):
        """The bitmap path's per-index scratch block is allocated once per
        size class and reused — no fresh full-matrix temporary per call."""
        index = CoverageIndex.from_coverage_lists(
            [list(range(0, 64)), list(range(32, 96)), [5], [70]], num_trajectories=100
        )
        assert index.has_bitmap
        counts = np.zeros(100, dtype=np.int64)
        small = np.array([0, 1])
        index.batch_add_gains(counts, candidate_ids=small)
        first = index._scratch
        assert first is not None and first.shape[0] >= len(small)
        index.batch_remove_losses(counts, candidate_ids=small)
        assert index._scratch is first  # reused, not reallocated
        big = np.arange(4).repeat(8)  # 32 rows > initial capacity
        index.batch_add_gains(counts, candidate_ids=big)
        assert index._scratch.shape[0] >= len(big)

    def test_restricted_rows_histogram(self):
        """``influence.popcount.rows`` must record the *restricted* row count
        on restricted dispatches — the observable proof that the kernel no
        longer touches all rows."""
        index = CoverageIndex.from_coverage_lists(
            [list(range(0, 80)), list(range(10, 90)), list(range(20, 100)), [1, 2]],
            num_trajectories=100,
        )
        assert index.batch_prefers_bitmap
        counts = np.zeros(100, dtype=np.int64)
        obs.enable()
        try:
            obs.reset()
            index.batch_add_gains(counts, candidate_ids=np.array([2]))
            histogram = obs.get_registry().histogram("influence.popcount.rows")
            assert histogram.count == 1
            assert histogram.max == 1  # one row, not num_billboards
        finally:
            obs.disable()
            obs.reset()
