"""Tests for the content-keyed on-disk coverage cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.billboard import coverage_cache
from repro.billboard.coverage_cache import (
    CACHE_ENV,
    cache_path,
    coverage_fingerprint,
    get_or_build,
    load,
    resolve_cache_dir,
    store,
)
from repro.billboard.influence import CoverageIndex
from repro.datasets import generate_nyc


@pytest.fixture(scope="module")
def tiny_city():
    return generate_nyc(n_billboards=25, n_trajectories=120, seed=3)


def assert_same_index(left: CoverageIndex, right: CoverageIndex) -> None:
    assert left.num_billboards == right.num_billboards
    assert left.num_trajectories == right.num_trajectories
    assert left.lambda_m == right.lambda_m
    for billboard_id in range(left.num_billboards):
        assert np.array_equal(
            left.covered_by(billboard_id), right.covered_by(billboard_id)
        )
    assert np.array_equal(left.individual_influences, right.individual_influences)


class TestRoundTrip:
    def test_store_then_load_is_identical(self, tiny_city, tmp_path):
        index = CoverageIndex(
            tiny_city.billboards, tiny_city.trajectories, lambda_m=100.0
        )
        path = store(index, tmp_path / "entry.npz")
        loaded = load(path)
        assert loaded is not None
        assert_same_index(index, loaded)

    def test_loaded_index_answers_queries_identically(self, tiny_city, tmp_path):
        index = CoverageIndex(
            tiny_city.billboards, tiny_city.trajectories, lambda_m=100.0
        )
        loaded = load(store(index, tmp_path / "entry.npz"))
        sets = [[0, 3, 7], list(range(index.num_billboards)), []]
        for billboard_set in sets:
            assert loaded.influence_of_set(billboard_set) == index.influence_of_set(
                billboard_set
            )
        counts = np.zeros(index.num_trajectories, dtype=np.int32)
        counts[:40] = 1
        assert np.array_equal(
            loaded.batch_add_gains(counts), index.batch_add_gains(counts)
        )

    def test_get_or_build_hits_on_second_call(self, tiny_city, tmp_path, monkeypatch):
        builds = []
        original = coverage_cache.CoverageIndex

        class CountingIndex(original):
            def __init__(self, *args, **kwargs):
                builds.append(1)
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(coverage_cache, "CoverageIndex", CountingIndex)
        first = get_or_build(
            tiny_city.billboards, tiny_city.trajectories, 100.0, cache_dir=tmp_path
        )
        second = get_or_build(
            tiny_city.billboards, tiny_city.trajectories, 100.0, cache_dir=tmp_path
        )
        assert len(builds) == 1
        assert_same_index(first, second)

    def test_no_cache_dir_degrades_to_plain_build(self, tiny_city, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        index = get_or_build(tiny_city.billboards, tiny_city.trajectories, 100.0)
        direct = CoverageIndex(
            tiny_city.billboards, tiny_city.trajectories, lambda_m=100.0
        )
        assert_same_index(index, direct)


class TestFingerprint:
    def test_sensitive_to_lambda_and_meet_mode(self, tiny_city):
        base = coverage_fingerprint(tiny_city.billboards, tiny_city.trajectories, 100.0)
        assert base != coverage_fingerprint(
            tiny_city.billboards, tiny_city.trajectories, 150.0
        )
        assert base != coverage_fingerprint(
            tiny_city.billboards, tiny_city.trajectories, 100.0, exact_segments=True
        )

    def test_sensitive_to_city_content(self, tiny_city):
        other = generate_nyc(n_billboards=25, n_trajectories=120, seed=4)
        assert coverage_fingerprint(
            tiny_city.billboards, tiny_city.trajectories, 100.0
        ) != coverage_fingerprint(other.billboards, other.trajectories, 100.0)

    def test_deterministic(self, tiny_city):
        first = coverage_fingerprint(tiny_city.billboards, tiny_city.trajectories, 100.0)
        second = coverage_fingerprint(tiny_city.billboards, tiny_city.trajectories, 100.0)
        assert first == second


class TestRobustness:
    def test_missing_file_loads_none(self, tmp_path):
        assert load(tmp_path / "absent.npz") is None

    def test_corrupt_file_rebuilds(self, tiny_city, tmp_path):
        fingerprint = coverage_fingerprint(
            tiny_city.billboards, tiny_city.trajectories, 100.0
        )
        path = cache_path(tmp_path, fingerprint)
        path.write_bytes(b"not an npz archive")
        assert load(path) is None
        index = get_or_build(
            tiny_city.billboards, tiny_city.trajectories, 100.0, cache_dir=tmp_path
        )
        direct = CoverageIndex(
            tiny_city.billboards, tiny_city.trajectories, lambda_m=100.0
        )
        assert_same_index(index, direct)
        # The rebuild also repaired the cache entry.
        assert load(path) is not None

    def test_unwritable_cache_location_degrades_to_plain_build(
        self, tiny_city, tmp_path
    ):
        # A cache "directory" that is actually a file: the build must still
        # succeed, silently skipping the store.
        not_a_dir = tmp_path / "cache-file"
        not_a_dir.write_text("occupied")
        index = get_or_build(
            tiny_city.billboards, tiny_city.trajectories, 100.0, cache_dir=not_a_dir
        )
        direct = CoverageIndex(
            tiny_city.billboards, tiny_city.trajectories, lambda_m=100.0
        )
        assert_same_index(index, direct)

    def test_stale_format_version_is_ignored(self, tiny_city, tmp_path):
        index = CoverageIndex(
            tiny_city.billboards, tiny_city.trajectories, lambda_m=100.0
        )
        path = store(index, tmp_path / "entry.npz")
        flat_ids, offsets = index.to_arrays()
        np.savez_compressed(
            path,
            version=np.int64(coverage_cache._FORMAT_VERSION + 1),
            flat_ids=flat_ids,
            offsets=offsets,
            num_trajectories=np.int64(index.num_trajectories),
            lambda_m=np.float64(index.lambda_m),
        )
        assert load(path) is None


class TestEnvWiring:
    def test_resolve_cache_dir_prefers_argument(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "from-env"))
        assert resolve_cache_dir(tmp_path / "explicit") == tmp_path / "explicit"
        assert resolve_cache_dir() == tmp_path / "from-env"
        monkeypatch.delenv(CACHE_ENV)
        assert resolve_cache_dir() is None

    def test_city_dataset_coverage_uses_env_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        city = generate_nyc(n_billboards=15, n_trajectories=80, seed=5)
        index = city.coverage(lambda_m=100.0)
        entries = list(tmp_path.glob("coverage-*.npz"))
        assert len(entries) == 1
        assert_same_index(index, load(entries[0]))
