"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cell_defaults(self):
        args = build_parser().parse_args(["cell"])
        assert args.dataset == "nyc"
        assert args.alpha == 1.0

    def test_sweep_parameter_choices(self):
        args = build_parser().parse_args(["sweep", "--parameter", "gamma"])
        assert args.parameter == "gamma"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--parameter", "bogus"])


class TestCommands:
    def test_example1_output(self, capsys):
        assert main(["example1"]) == 0
        out = capsys.readouterr().out
        assert "Strategy 1" in out
        assert "Strategy 2" in out
        assert "regret=13.25" in out
        assert "regret=0.00" in out

    def test_cell_runs_small(self, capsys):
        code = main(
            [
                "cell",
                "--billboards", "50",
                "--trajectories", "300",
                "--alpha", "0.6",
                "--p-avg", "0.1",
                "--methods", "g-order,g-global",
                "--seed", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "g-order" in out
        assert "regret=" in out

    def test_sweep_runs_small(self, capsys):
        code = main(
            [
                "sweep",
                "--billboards", "50",
                "--trajectories", "300",
                "--p-avg", "0.1",
                "--methods", "g-global",
                "--parameter", "gamma",
                "--seed", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep over gamma" in out
        assert "Runtime" in out

    def test_figure_runs_small(self, capsys, tmp_path):
        csv_path = tmp_path / "fig10.csv"
        code = main(
            [
                "figure", "fig10",
                "--billboards", "50",
                "--trajectories", "300",
                "--restarts", "0",
                "--seed", "2",
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert csv_path.exists()

    def test_figure_unknown_id(self):
        with pytest.raises(ValueError, match="unknown figure"):
            main(["figure", "fig99", "--billboards", "50", "--trajectories", "300"])

    def test_figure_partial_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig10", "--billboards", "50"])

    def test_cell_obs_out_and_summary(self, capsys, tmp_path):
        from repro import obs

        log_path = tmp_path / "run.jsonl"
        code = main(
            [
                "cell",
                "--billboards", "40",
                "--trajectories", "250",
                "--p-avg", "0.1",
                "--methods", "g-global",
                "--restarts", "0",
                "--seed", "2",
                "--obs-out", str(log_path),
                "--obs-summary",
            ]
        )
        assert code == 0
        assert not obs.enabled()  # the CLI cleans up after itself
        out = capsys.readouterr().out
        assert "== observability summary ==" in out
        assert "solver.solves" in out
        lines = obs.read_jsonl(log_path)
        kinds = [line["event"] for line in lines]
        assert "span" in kinds and "solver" in kinds and "counters" in kinds
        counters = next(l for l in lines if l["event"] == "counters")["counters"]
        assert counters["solver.solves"] == 1
        assert counters["coverage.builds"] == 1

    def test_obs_env_variable_enables_collection(self, capsys, tmp_path, monkeypatch):
        from repro import obs

        log_path = tmp_path / "env-run.jsonl"
        monkeypatch.setenv(obs.OBS_OUT_ENV, str(log_path))
        code = main(
            [
                "cell",
                "--billboards", "40",
                "--trajectories", "250",
                "--p-avg", "0.1",
                "--methods", "g-order",
                "--restarts", "0",
                "--seed", "2",
            ]
        )
        assert code == 0
        assert log_path.exists()
        assert "wrote obs run log" in capsys.readouterr().out

    def test_datasets_table5(self, capsys):
        # Patch the bench scale down so the command is fast in tests.
        import repro.cli as cli_module

        original = cli_module.BENCH_SCALE
        cli_module.BENCH_SCALE = {"nyc": (30, 150), "sg": (60, 150)}
        try:
            assert main(["datasets", "--seed", "1"]) == 0
        finally:
            cli_module.BENCH_SCALE = original
        out = capsys.readouterr().out
        assert "NYC" in out and "SG" in out
        assert "AvgDistance" in out
