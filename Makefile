PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke bench bench-scale bench-scale-smoke bench-quotes bench-quotes-smoke lint lint-canary obs-demo trace-smoke

## Tier-1 test suite (also runs the benchmark script's smoke mode, see
## tests/experiments/test_parallel_harness.py).
test:
	$(PYTHON) -m pytest -x -q

## Seconds-fast benchmark pass on a tiny city — CI wiring for the full bench.
## bench_solvers asserts all three sweep engines (full / dirty-full-scan /
## dirty) land on identical regret and move counts, that parallel restarts
## equal serial, and — via the flag — that batched warm-pool parallel
## restarts actually beat serial.  The speedup gate assumes a multi-core
## runner (GitHub Actions); on a single-CPU box the bench skips the gate
## with a stderr note instead of asserting a speedup the hardware cannot
## produce.
bench-smoke:
	$(PYTHON) scripts/bench_coverage.py --smoke --output /tmp/BENCH_coverage_smoke.json
	$(PYTHON) scripts/bench_solvers.py --smoke --output /tmp/BENCH_solvers_smoke.json \
		--assert-parallel-speedup 1.2

## Full benchmarks; append a run to BENCH_coverage.json / BENCH_solvers.json
## at the root and fail when any timing regresses >15% against the best
## recorded run of the same scenario.
bench:
	$(PYTHON) scripts/bench_coverage.py --output BENCH_coverage.json --gate-regression
	$(PYTHON) scripts/bench_solvers.py --output BENCH_solvers.json --gate-regression

## Paper-scale sweep (10^4 -> 2*10^6 streamed trajectories): storage tiers,
## popcount kernels, bit-identity, and one greedy+BLS cell under a 512 MB
## bitmap budget.  Appends to BENCH_scale.json; takes minutes at full scale.
bench-scale:
	$(PYTHON) scripts/bench_scale.py --output BENCH_scale.json

## The 10^4 tier only — seconds-fast CI wiring for the scale sweep.
bench-scale-smoke:
	$(PYTHON) scripts/bench_scale.py --smoke --output /tmp/BENCH_scale_smoke.json

## Quote-throughput benchmark: the journaled incremental pricing path vs the
## from-scratch path over a deep standing book, bit-identity asserted on every
## overlapping quote.  Appends to BENCH_quotes.json, gates timing regressions
## >15%, and fails below a 10x incremental speedup (DESIGN.md §15).
bench-quotes:
	$(PYTHON) scripts/bench_quotes.py --output BENCH_quotes.json \
		--assert-speedup 10 --gate-regression

## Seconds-fast quotes pass on a tiny city — CI wiring for the full bench.
## No speedup floor: the smoke book is too shallow for the O(book) / O(delta)
## asymmetry to show a stable multiple.
bench-quotes-smoke:
	$(PYTHON) scripts/bench_quotes.py --smoke --output /tmp/BENCH_quotes_smoke.json

## Static checks, all stdlib-only (the container ships no third-party
## linter): bytecode compilation, the repro invariant linter (DESIGN.md §14),
## and the generated README env-knob table staying in sync with repro.env.
lint:
	$(PYTHON) -m compileall -q src tests scripts examples
	$(PYTHON) -m repro.cli lint
	$(PYTHON) scripts/gen_env_docs.py --check

## Prove each shipped lint rule fires on an injected violation and that the
## suppression + baseline escape hatches round-trip (the CI canary step).
lint-canary:
	$(PYTHON) scripts/lint_canary.py

## Small instrumented sweep: two workers, a shared coverage cache, the JSONL
## run log, and the end-of-run summary table (see README "Inspecting a run").
OBS_DEMO_DIR ?= /tmp/mroam-obs-demo
obs-demo:
	mkdir -p $(OBS_DEMO_DIR)
	## Warm the on-disk coverage cache at the default λ=100 (uninstrumented),
	## so the instrumented sweep below records both cache hits and misses.
	REPRO_COVERAGE_CACHE=$(OBS_DEMO_DIR)/coverage-cache \
	$(PYTHON) -m repro.cli cell \
		--billboards 60 --trajectories 400 --p-avg 0.1 --seed 2 \
		--methods g-global --restarts 0 > /dev/null
	REPRO_COVERAGE_CACHE=$(OBS_DEMO_DIR)/coverage-cache \
	$(PYTHON) -m repro.cli sweep \
		--billboards 60 --trajectories 400 --p-avg 0.1 --seed 2 \
		--parameter lambda_m --methods g-global,bls --restarts 1 --workers 2 \
		--obs-out $(OBS_DEMO_DIR)/run.jsonl --obs-summary
	@echo "run log: $(OBS_DEMO_DIR)/run.jsonl"

## Tracing + ledger end-to-end: the solver bench in smoke mode with a Chrome
## trace and a run ledger, the trace schema-validated (clock-aligned,
## >=2 worker pids), and the bottleneck report rendered from both artifacts.
TRACE_DIR ?= /tmp/mroam-trace-smoke
trace-smoke:
	mkdir -p $(TRACE_DIR)
	$(PYTHON) scripts/bench_solvers.py --smoke \
		--output $(TRACE_DIR)/BENCH_solvers_trace.json \
		--trace-out $(TRACE_DIR)/trace.json \
		--ledger $(TRACE_DIR)/ledger.jsonl
	$(PYTHON) scripts/obs_report.py --validate $(TRACE_DIR)/trace.json
	$(PYTHON) scripts/obs_report.py $(TRACE_DIR)/ledger.jsonl
	@echo "trace: $(TRACE_DIR)/trace.json"
