PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke bench lint

## Tier-1 test suite (also runs the benchmark script's smoke mode, see
## tests/experiments/test_parallel_harness.py).
test:
	$(PYTHON) -m pytest -x -q

## Seconds-fast benchmark pass on a tiny city — CI wiring for the full bench.
bench-smoke:
	$(PYTHON) scripts/bench_coverage.py --smoke --output /tmp/BENCH_coverage_smoke.json

## Full coverage-kernel benchmark; rewrites BENCH_coverage.json at the root.
bench:
	$(PYTHON) scripts/bench_coverage.py --output BENCH_coverage.json

## Syntax/bytecode gate over all Python sources (the container ships no
## third-party linter, so this is a stdlib-only check).
lint:
	$(PYTHON) -m compileall -q src tests scripts examples
