"""Ablations of the local search framework's design choices (Section 6).

Not a figure in the paper, but DESIGN.md calls these out:

* restart count (Algorithm 3's "preset count") — more restarts never hurt;
* neighbourhood granularity — billboard-level moves (BLS) dominate
  advertiser-level set swaps (ALS) at equal restart budget, which is the
  paper's motivation for Section 6.2;
* acceptance threshold (the ``r`` of Definition 6.1) — a coarse threshold
  trades quality for fewer sweeps.
"""

from benchmarks.conftest import bench_scenario
from repro.algorithms.local_search import RandomizedLocalSearch


def run_ablations(cities):
    instance = bench_scenario("nyc").with_params(alpha=0.8).build_instance(cities("nyc"))

    restart_rows = []
    for restarts in (0, 1, 3):
        result = RandomizedLocalSearch("bls", restarts=restarts, seed=7).solve(instance)
        restart_rows.append((restarts, result.total_regret, result.runtime_s))

    neighborhood_rows = []
    for neighborhood in ("als", "bls"):
        result = RandomizedLocalSearch(neighborhood, restarts=2, seed=7).solve(instance)
        neighborhood_rows.append((neighborhood, result.total_regret, result.runtime_s))

    threshold_rows = []
    for min_improvement in (1e-9, 1.0, 10.0):
        result = RandomizedLocalSearch(
            "bls", restarts=1, seed=7, min_improvement=min_improvement
        ).solve(instance)
        threshold_rows.append((min_improvement, result.total_regret, result.runtime_s))

    return restart_rows, neighborhood_rows, threshold_rows


def test_ablation_search(benchmark, cities):
    restart_rows, neighborhood_rows, threshold_rows = benchmark.pedantic(
        lambda: run_ablations(cities), rounds=1, iterations=1
    )

    print("\nAblation: restart count (BLS, NYC, alpha=80%)")
    for restarts, regret, runtime in restart_rows:
        print(f"  restarts={restarts}: regret={regret:.1f} time={runtime:.2f}s")
    print("Ablation: neighbourhood (restarts=2)")
    for neighborhood, regret, runtime in neighborhood_rows:
        print(f"  {neighborhood}: regret={regret:.1f} time={runtime:.2f}s")
    print("Ablation: acceptance threshold r (restarts=1)")
    for threshold, regret, runtime in threshold_rows:
        print(f"  min_improvement={threshold}: regret={regret:.1f} time={runtime:.2f}s")

    # More restarts never hurt (the framework keeps the best plan seen).
    regrets = [row[1] for row in restart_rows]
    assert regrets[2] <= regrets[0] + 1e-6
    # BLS dominates ALS at equal budget (the Section 6.2 motivation).
    assert neighborhood_rows[1][1] <= neighborhood_rows[0][1] + 1e-6
    # Loosening the acceptance threshold cannot improve quality.
    assert threshold_rows[0][1] <= threshold_rows[-1][1] + 1e-6
