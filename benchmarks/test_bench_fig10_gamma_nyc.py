"""F10: impact of the unsatisfied penalty ratio γ on NYC (Figure 10).

The paper observes: as γ grows, the host recovers a larger fraction of the
payment from partially-served advertisers, so every algorithm's regret
drops.
"""

from benchmarks.conftest import GAMMAS, cached_sweep
from repro.experiments.reporting import format_regret_table


def test_fig10(benchmark, cities, sweep_store):
    result = benchmark.pedantic(
        lambda: cached_sweep(sweep_store, cities, "nyc", "gamma", GAMMAS),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_regret_table(result, "Figure 10: regret vs gamma (NYC)", "{:.2f}"))

    # γ only matters for unsatisfied advertisers: where a method's γ=0 plan
    # carries an unsatisfied penalty, raising γ to 1 must reduce its regret
    # (the host recovers the pro-rata payment).  Fully-satisfied plans only
    # see γ through greedy tie-breaking noise, so they are exempt.
    low_gamma = result.values[0]
    for method in ("g-order", "g-global", "als", "bls"):
        baseline = result.cells[low_gamma][method]
        if baseline.unsatisfied_penalty > 0.05 * max(baseline.total_regret, 1e-9):
            series = result.series(method)
            if method == "bls":
                # The local search tracks the γ relief faithfully.
                assert series[-1] < series[0], method
            else:
                # Greedy plans are re-derived per γ, so small wiggles are
                # allowed; the relief must still hold within 15 %.
                assert series[-1] <= series[0] * 1.15, method
