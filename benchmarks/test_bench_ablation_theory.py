"""The Section 4 hardness construction, exercised end to end.

Reduces YES-instances of numerical 3-dimensional matching to MROAM and
measures which solvers recover the zero-regret plan the reduction promises.
This doubles as a worst-case stress test: the reduced instances are exactly
the structures that make greedy methods fail.
"""

from repro.algorithms.registry import PAPER_METHODS, make_solver
from repro.theory.hardness import matching_to_allocation, reduce_n3dm_to_mroam
from repro.theory.n3dm import find_matching, yes_instance


def run_reduction_suite():
    rows = []
    for seed in range(5):
        instance = yes_instance(3, seed=seed)
        mroam = reduce_n3dm_to_mroam(instance)
        matching = find_matching(instance)
        oracle = matching_to_allocation(mroam, matching).total_regret()
        row = {"seed": seed, "oracle": oracle}
        for method in PAPER_METHODS:
            result = make_solver(method, seed=seed, restarts=3).solve(mroam)
            row[method] = result.total_regret
        rows.append(row)
    return rows


def test_ablation_theory(benchmark):
    rows = benchmark.pedantic(run_reduction_suite, rounds=1, iterations=1)

    print("\nN3DM-reduced instances (zero regret achievable on all):")
    for row in rows:
        cells = " ".join(f"{m}={row[m]:.2f}" for m in PAPER_METHODS)
        print(f"  seed={row['seed']} oracle={row['oracle']:.2f} {cells}")

    zero_recovery = {
        method: sum(1 for row in rows if row[method] < 1e-9) for method in PAPER_METHODS
    }
    print(f"zero-regret recovery counts: {zero_recovery}")

    # The matching-derived plan is always zero regret (the reduction's promise).
    assert all(row["oracle"] == 0.0 for row in rows)
    # The local searches recover the optimum at least as often as the greedy
    # baselines — the hardness structure is what defeats pure greedy.
    assert zero_recovery["bls"] >= zero_recovery["g-global"]
