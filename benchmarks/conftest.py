"""Shared infrastructure for the figure/table benchmarks.

Every bench regenerates one table or figure of the paper (see DESIGN.md §5):
it runs the corresponding parameter sweep, prints the same rows/series the
paper plots, and asserts the qualitative *shape* (who wins, directionality).

Cities and sweeps are cached per session: the runtime figures (8–9) report
the wall-clock numbers measured during the regret figures' sweeps, exactly as
the paper derives both families of plots from the same runs.

Set ``MROAM_BENCH_QUICK=1`` to run a reduced grid (smaller corpora, fewer
sweep points) while iterating; the recorded EXPERIMENTS.md numbers come from
the full default grid.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.configs import (
    ALPHA_VALUES,
    BENCH_RESTARTS,
    GAMMA_VALUES,
    LAMBDA_VALUES,
    P_AVG_VALUES,
    default_scenario,
)
from repro.experiments.harness import ExperimentResult, sweep

QUICK = os.environ.get("MROAM_BENCH_QUICK") == "1"

#: Sweep grids (reduced in quick mode).
ALPHAS = (0.4, 1.0, 1.2) if QUICK else ALPHA_VALUES
P_AVGS = (0.01, 0.05, 0.2) if QUICK else P_AVG_VALUES
GAMMAS = (0.0, 0.5, 1.0) if QUICK else GAMMA_VALUES
LAMBDAS = (50.0, 100.0, 200.0) if QUICK else LAMBDA_VALUES

_QUICK_SCALE = {"nyc": (250, 3_000), "sg": (400, 3_000)}


def bench_scenario(dataset: str):
    scenario = default_scenario(dataset, seed=7)
    if QUICK:
        scale = _QUICK_SCALE[dataset]
        scenario = scenario.with_params(n_billboards=scale[0], n_trajectories=scale[1])
    return scenario


@pytest.fixture(scope="session")
def cities():
    """Lazily generated bench cities, one per dataset."""
    cache: dict = {}

    def get(dataset: str):
        if dataset not in cache:
            cache[dataset] = bench_scenario(dataset).build_city()
        return cache[dataset]

    return get


@pytest.fixture(scope="session")
def sweep_store():
    """Session cache of sweeps keyed by (dataset, parameter, extra)."""
    return {}


def cached_sweep(
    store: dict,
    cities,
    dataset: str,
    parameter: str,
    values,
    base_overrides: dict | None = None,
) -> ExperimentResult:
    """Run (or fetch) a sweep for one figure."""
    key = (dataset, parameter, tuple(values), tuple(sorted((base_overrides or {}).items())))
    if key not in store:
        scenario = bench_scenario(dataset)
        if base_overrides:
            scenario = scenario.with_params(**base_overrides)
        store[key] = sweep(
            scenario,
            parameter,
            values,
            restarts=BENCH_RESTARTS,
            solver_seed=7,
            city=cities(dataset),
        )
    return store[key]


def alpha_sweep(store, cities, dataset: str, p_avg: float) -> ExperimentResult:
    return cached_sweep(store, cities, dataset, "alpha", ALPHAS, {"p_avg": p_avg})


def assert_shapes_alpha_sweep(result: ExperimentResult) -> None:
    """The qualitative claims common to every α-sweep figure (2–7)."""
    for alpha in result.values:
        cell = result.cells[alpha]
        # The local search framework refines G-Global, so it never loses to it.
        assert cell["bls"].total_regret <= cell["g-global"].total_regret + 1e-6
        assert cell["als"].total_regret <= cell["g-global"].total_regret + 1e-6

    low, high = result.values[0], result.values[-1]
    # Regret grows as the market tightens (low → excessive global demand).
    assert result.cells[high]["g-global"].total_regret >= result.cells[low]["g-global"].total_regret

    # Decomposition: excess-dominated at low α, unsatisfied-dominated at α ≥ 1.
    low_cell = result.cells[low]["bls"]
    if low_cell.total_regret > 0:
        assert low_cell.excessive_pct >= low_cell.unsatisfied_pct
    for alpha in result.values:
        if alpha >= 1.2:
            high_cell = result.cells[alpha]["g-global"]
            assert high_cell.unsatisfied_pct > 50.0
