"""F1: influence and impression-count distributions (Figure 1).

Figure 1a: per-billboard influence (descending, normalized by the maximum).
Figure 1b: fraction of trajectories covered when the top x % of billboards
are selected.  The paper's signature shapes: NYC keeps proportionally more
high-influence billboards, and its impression curve rises more slowly than
SG's because the top NYC billboards cover overlapping audiences.
"""

import numpy as np

from repro.experiments.reporting import format_distribution_table

FRACTIONS = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0)
QUANTILES = (0.1, 0.25, 0.5, 0.75)


def build_distributions(cities):
    data = {}
    for dataset in ("nyc", "sg"):
        coverage = cities(dataset).coverage(100.0)
        data[dataset] = {
            "influence": coverage.influence_distribution(),
            "impressions": coverage.impression_curve(FRACTIONS),
        }
    return data


def test_fig1(benchmark, cities):
    data = benchmark.pedantic(lambda: build_distributions(cities), rounds=1, iterations=1)

    fig1a = {
        name.upper(): [
            data[name]["influence"][int(q * len(data[name]["influence"]))]
            for q in QUANTILES
        ]
        for name in ("nyc", "sg")
    }
    print()
    print(
        format_distribution_table(
            list(QUANTILES), fig1a, "Figure 1a: influence / max at billboard quantile"
        )
    )
    fig1b = {name.upper(): data[name]["impressions"].tolist() for name in ("nyc", "sg")}
    print()
    print(
        format_distribution_table(
            list(FRACTIONS), fig1b, "Figure 1b: impression fraction vs % billboards"
        )
    )

    nyc_curve = data["nyc"]["impressions"]
    sg_curve = data["sg"]["impressions"]
    # Fig 1b shape: the SG curve dominates (rises faster than) NYC's.
    assert np.all(sg_curve >= nyc_curve)
    # Fig 1a shape: NYC's head is proportionally stronger (more high-influence
    # billboards relative to its own maximum).
    nyc_influence = data["nyc"]["influence"]
    sg_influence = data["sg"]["influence"]
    head = int(0.25 * min(len(nyc_influence), len(sg_influence)))
    assert nyc_influence[head] >= sg_influence[head]
    # Both curves are monotone by construction.
    assert np.all(np.diff(nyc_curve) >= 0)
    assert np.all(np.diff(sg_curve) >= 0)
