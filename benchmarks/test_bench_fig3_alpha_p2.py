"""F3: regret vs α at p(Ī^A) = 2 % (Figure 3, NYC, |A| = 50 at α = 100 %)."""

from benchmarks._alpha_figure import run_alpha_figure
from repro.market.demand import advertiser_count


def test_fig3(benchmark, cities, sweep_store):
    result = run_alpha_figure(
        benchmark, cities, sweep_store, "nyc", 0.02,
        "Figure 3: regret vs alpha (NYC, p=2%)",
    )
    # The paper's caption: |A| = 50 at the default α = 100 %.
    assert advertiser_count(1.0, 0.02) == 50
    if 1.0 in result.values:
        assert result.cells[1.0]["bls"].num_advertisers == 50
