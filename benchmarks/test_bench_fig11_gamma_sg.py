"""F11: impact of the unsatisfied penalty ratio γ on SG (Figure 11)."""

from benchmarks.conftest import GAMMAS, cached_sweep
from repro.experiments.reporting import format_regret_table


def test_fig11(benchmark, cities, sweep_store):
    result = benchmark.pedantic(
        lambda: cached_sweep(sweep_store, cities, "sg", "gamma", GAMMAS),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_regret_table(result, "Figure 11: regret vs gamma (SG)", "{:.2f}"))

    # As in Figure 10: the γ relief applies to plans that actually carry an
    # unsatisfied penalty at γ = 0.
    low_gamma = result.values[0]
    for method in ("g-order", "g-global", "als", "bls"):
        baseline = result.cells[low_gamma][method]
        if baseline.unsatisfied_penalty > 0.05 * max(baseline.total_regret, 1e-9):
            series = result.series(method)
            if method == "bls":
                # The local search tracks the γ relief faithfully.
                assert series[-1] < series[0], method
            else:
                # Greedy plans are re-derived per γ, so small wiggles are
                # allowed; the relief must still hold within 15 %.
                assert series[-1] <= series[0] * 1.15, method
    # Paper, Fig. 11(e) discussion: at γ = 1 BLS almost meets everyone's
    # demand — its satisfied count at γ = 1 is at least that of the greedy.
    top_gamma = result.values[-1]
    assert (
        result.cells[top_gamma]["bls"].satisfied_advertisers
        >= result.cells[top_gamma]["g-order"].satisfied_advertisers
    )
