"""T5: dataset statistics (Table 5 of the paper).

Prints |T|, |U|, average trip distance and travel time for the two bench
cities and asserts they track the paper's real-data statistics (NYC: 2.9 km,
569 s; SG: 4.2 km, 1342 s) within generator tolerance.
"""

from benchmarks.conftest import bench_scenario
from repro.trajectory.stats import summarize


def build_stats(cities):
    rows = {}
    for dataset in ("nyc", "sg"):
        city = cities(dataset)
        rows[dataset] = (city, summarize(city.trajectories))
    return rows


def test_table5(benchmark, cities):
    rows = benchmark.pedantic(lambda: build_stats(cities), rounds=1, iterations=1)

    print("\nTable 5 (dataset statistics, scaled reproduction):")
    for dataset, (city, stats) in rows.items():
        print(" ", stats.as_table5_row(city.name, len(city.billboards)))

    nyc_stats = rows["nyc"][1]
    sg_stats = rows["sg"][1]
    # Shapes from the paper: SG trips are longer and much slower than NYC's.
    assert sg_stats.avg_distance_m > nyc_stats.avg_distance_m
    assert sg_stats.avg_travel_time_s > 1.5 * nyc_stats.avg_travel_time_s
    # Absolute scale within tolerance of Table 5.
    assert 0.7 * 2_900 <= nyc_stats.avg_distance_m <= 1.3 * 2_900
    assert 0.7 * 569 <= nyc_stats.avg_travel_time_s <= 1.3 * 569
    assert 0.7 * 4_200 <= sg_stats.avg_distance_m <= 1.3 * 4_200
    assert 0.7 * 1_342 <= sg_stats.avg_travel_time_s <= 1.3 * 1_342
    # |U|: SG has the larger inventory (paper: 4092 vs 1462).
    assert len(rows["sg"][0].billboards) > len(rows["nyc"][0].billboards)
