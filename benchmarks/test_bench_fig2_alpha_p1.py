"""F2: regret vs demand–supply ratio α at p(Ī^A) = 1 % (Figure 2, NYC).

Case 1 / Case 3 of the paper: many small advertisers.  At low α everyone is
satisfied and regret is excessive influence; at α ≥ 100 % the unsatisfied
penalty dominates and the local searches shine.
"""

from benchmarks._alpha_figure import run_alpha_figure


def test_fig2(benchmark, cities, sweep_store):
    result = run_alpha_figure(
        benchmark, cities, sweep_store, "nyc", 0.01,
        "Figure 2: regret vs alpha (NYC, p=1%)",
    )
    # Case 1: at the lowest α every advertiser is satisfiable — BLS satisfies
    # all of them (or deliberately sacrifices only when that is cheaper).
    low = result.values[0]
    bls_low = result.cells[low]["bls"]
    assert bls_low.satisfied_advertisers >= bls_low.num_advertisers - 1
