"""Ablation: digital billboards (the time-slot extension of Section 3.2).

Expands the NYC bench inventory into 1/2/4 slots per panel and sells the
same demand book against each.  The paper's remark — a digital panel is just
"multiple billboards, one per time slot" — predicts that slicing grows the
effective inventory (time-disjoint audiences become separately sellable) so
regret in a tight market can only benefit.
"""

from repro.algorithms.registry import make_solver
from repro.billboard.digital import expand_digital
from repro.core.advertiser import Advertiser
from repro.core.problem import MROAMInstance


def run_digital_ablation(cities):
    city = cities("nyc")
    physical = city.coverage(100.0)

    # A tight demand book sized against the static supply.
    fractions = (0.30, 0.25, 0.20, 0.15, 0.10, 0.08)
    book = [
        (max(1, int(f * physical.supply)), float(int(f * physical.supply)))
        for f in fractions
    ]

    rows = []
    for slot_count in (1, 2, 4):
        if slot_count == 1:
            coverage = physical
        else:
            coverage = expand_digital(physical, city.trajectories, slots=slot_count).coverage
        instance = MROAMInstance(
            coverage,
            [Advertiser(i, d, p) for i, (d, p) in enumerate(book)],
            gamma=0.5,
        )
        result = make_solver("bls", seed=7, restarts=1).solve(instance)
        rows.append(
            {
                "slots": slot_count,
                "inventory": coverage.num_billboards,
                "supply": coverage.supply,
                "regret": result.total_regret,
                "satisfied": result.satisfied_count,
            }
        )
    return rows


def test_ablation_digital(benchmark, cities):
    rows = benchmark.pedantic(lambda: run_digital_ablation(cities), rounds=1, iterations=1)

    print("\nAblation: digital time slots (NYC, tight demand book, BLS)")
    for row in rows:
        print(
            f"  slots={row['slots']}: inventory={row['inventory']:,} "
            f"supply={row['supply']:,} regret={row['regret']:.1f} "
            f"satisfied={row['satisfied']}/6"
        )

    static = rows[0]
    sliced = rows[-1]
    # Slicing never reduces supply (slot unions recover physical coverage,
    # and trips spanning slot boundaries are sellable in each).
    assert sliced["supply"] >= static["supply"]
    # And the richer inventory should not hurt the host in a tight market.
    assert sliced["regret"] <= static["regret"] * 1.05 + 1e-6
