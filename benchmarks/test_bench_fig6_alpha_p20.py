"""F6: regret vs α at p(Ī^A) = 20 % (Figure 6, NYC, |A| = 5 at α = 100 %).

Case 4 of the paper: a few huge advertisers.  At high α every miss is very
expensive, all methods carry large regret, and the local searches' advantage
narrows (but stays).
"""

from benchmarks._alpha_figure import run_alpha_figure


def test_fig6(benchmark, cities, sweep_store):
    result = run_alpha_figure(
        benchmark, cities, sweep_store, "nyc", 0.20,
        "Figure 6: regret vs alpha (NYC, p=20%)",
    )
    # Case 4: at the tightest market the absolute regret is much larger than
    # in the loosest one (big advertisers make every miss expensive).
    low, high = result.values[0], result.values[-1]
    assert (
        result.cells[high]["g-global"].total_regret
        >= 2.0 * result.cells[low]["g-global"].total_regret
        or result.cells[low]["g-global"].total_regret == 0.0
    )
