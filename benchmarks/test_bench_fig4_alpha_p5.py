"""F4: regret vs α at the default p(Ī^A) = 5 % (Figure 4, NYC, |A| = 20).

This sweep's wall-clock measurements also feed Figure 8 (runtime vs α).
"""

from benchmarks._alpha_figure import run_alpha_figure


def test_fig4(benchmark, cities, sweep_store):
    result = run_alpha_figure(
        benchmark, cities, sweep_store, "nyc", 0.05,
        "Figure 4: regret vs alpha (NYC, p=5%, default)",
    )
    # Case 2 claim: at low α with sizeable advertisers, BLS reaches (almost)
    # zero regret while the greedies retain visible regret.
    low = result.values[0]
    cell = result.cells[low]
    assert cell["bls"].total_regret <= 0.1 * max(cell["g-global"].total_regret, 1e-9) or (
        cell["bls"].total_regret < 1.0
    )
