"""F12: impact of the influence radius λ (Figure 12).

Paper shapes: in NYC, growing λ proportionally grows supply and demand, so
regret grows with λ.  In SG, billboards sit at bus stops ≈420 m apart, so
coverage (and regret) barely move for λ ≤ 150 m, with an uptick at 200 m
when stops near route intersections start reaching trips of crossing routes.
"""

from benchmarks.conftest import LAMBDAS, cached_sweep
from repro.experiments.reporting import format_regret_table


def test_fig12(benchmark, cities, sweep_store):
    results = benchmark.pedantic(
        lambda: {
            dataset: cached_sweep(sweep_store, cities, dataset, "lambda_m", LAMBDAS)
            for dataset in ("nyc", "sg")
        },
        rounds=1,
        iterations=1,
    )
    print()
    for dataset, result in results.items():
        print(
            format_regret_table(
                result, f"Figure 12 ({dataset.upper()}): regret vs lambda", "{:.0f}"
            )
        )
        print()

    # NYC: supply grows strongly with λ, and with α fixed the (scaled)
    # demands grow with it, so the greedy baseline's regret grows end-to-end.
    nyc = results["nyc"]
    nyc_supply = {
        lam: cities("nyc").coverage(lam).supply for lam in nyc.values
    }
    assert nyc_supply[nyc.values[-1]] > 1.5 * nyc_supply[nyc.values[0]]
    assert nyc.series("g-global")[-1] > nyc.series("g-global")[0]

    # SG: λ-insensitive below the stop spacing...
    sg_supply = {lam: cities("sg").coverage(lam).supply for lam in LAMBDAS}
    if 150.0 in sg_supply:
        assert sg_supply[150.0] <= 1.30 * sg_supply[50.0]
    # ...with an uptick at 200 m (crossing routes come into range).
    assert sg_supply[200.0] > sg_supply[LAMBDAS[-2]]
