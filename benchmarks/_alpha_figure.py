"""Shared driver for the α-sweep regret figures (Figures 2–7).

Each figure file pins a dataset and a p(Ī^A) value; the driver runs (or
fetches from the session cache) the sweep, prints the stacked-bar table the
paper plots, and applies the common shape assertions.
"""

from __future__ import annotations

from benchmarks.conftest import alpha_sweep, assert_shapes_alpha_sweep
from repro.experiments.reporting import format_regret_table


def run_alpha_figure(benchmark, cities, sweep_store, dataset: str, p_avg: float, title: str):
    result = benchmark.pedantic(
        lambda: alpha_sweep(sweep_store, cities, dataset, p_avg),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_regret_table(result, title))
    assert_shapes_alpha_sweep(result)
    return result
