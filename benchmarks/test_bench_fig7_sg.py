"""F7: the SG dataset under default settings (Figure 7).

The paper reports SG at the default parameters and observes the same method
ordering as NYC with *smaller excessive-influence proportions* (bus-stop
billboards have low, uniform influence with little overlap, so plans can be
packed tightly).  This sweep's measurements also feed Figure 8's SG runtime
series.
"""

from benchmarks._alpha_figure import run_alpha_figure


def test_fig7(benchmark, cities, sweep_store):
    result = run_alpha_figure(
        benchmark, cities, sweep_store, "sg", 0.05,
        "Figure 7: regret vs alpha (SG, p=5%, default)",
    )
    # SG signature: BLS's excessive influence is (near) zero — finer-grained
    # billboards allow exact packing.
    for alpha in result.values:
        cell = result.cells[alpha]["bls"]
        assert cell.excessive_influence <= max(0.05 * cell.total_regret, 5.0)
