"""F9: running time vs p(Ī^A) (Figure 9).

Sweeps the average-individual demand ratio at the default α = 100 % on both
datasets and reports each method's wall-clock seconds.
"""

import numpy as np

from benchmarks.conftest import P_AVGS, cached_sweep
from repro.experiments.reporting import format_regret_table, format_runtime_table


def test_fig9(benchmark, cities, sweep_store):
    results = benchmark.pedantic(
        lambda: {
            dataset: cached_sweep(sweep_store, cities, dataset, "p_avg", P_AVGS)
            for dataset in ("nyc", "sg")
        },
        rounds=1,
        iterations=1,
    )

    print()
    for dataset, result in results.items():
        print(
            format_runtime_table(
                result, f"Figure 9 ({dataset.upper()}): runtime vs p(avg demand)"
            )
        )
        print()
        # The regret side of the same sweep (the paper's Case 1↔2 and 3↔4
        # transitions read along p).
        print(
            format_regret_table(
                result, f"Regret vs p at alpha=100% ({dataset.upper()})"
            )
        )
        print()

    for dataset, result in results.items():
        greedy_mean = np.mean(result.series("g-global", "runtime_s"))
        bls_mean = np.mean(result.series("bls", "runtime_s"))
        assert greedy_mean < bls_mean, dataset
        # Quality ordering holds across the p sweep too.
        for p_value in result.values:
            cell = result.cells[p_value]
            assert cell["bls"].total_regret <= cell["g-global"].total_regret + 1e-6
