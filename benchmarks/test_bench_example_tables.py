"""T1–T4: the Section 1 worked example (Tables 1–4).

Regenerates the two deployment strategies of the paper's introduction and
shows that the solvers recover the zero-regret plan (Strategy 2).
"""

import pytest

from repro.algorithms.registry import make_solver
from repro.datasets import (
    example1_instance,
    example1_strategy1,
    example1_strategy2,
)


def run_example_tables():
    instance = example1_instance()
    strategy1 = example1_strategy1(instance)
    strategy2 = example1_strategy2(instance)
    bls = make_solver("bls", seed=0, restarts=3).solve(instance)
    return instance, strategy1, strategy2, bls


def test_tables_1_to_4(benchmark):
    instance, strategy1, strategy2, bls = benchmark.pedantic(
        run_example_tables, rounds=1, iterations=1
    )

    print("\nTable 1 (billboard influences):", instance.coverage.individual_influences.tolist())
    print("Table 2 (contracts):", [(a.demand, a.payment) for a in instance.advertisers])
    for label, allocation in (("Table 3 / Strategy 1", strategy1), ("Table 4 / Strategy 2", strategy2)):
        rows = [
            (
                advertiser.name,
                sorted(f"o{b + 1}" for b in allocation.billboards_of(advertiser.advertiser_id)),
                "Y" if allocation.is_satisfied(advertiser.advertiser_id) else "N",
                allocation.influence(advertiser.advertiser_id) - advertiser.demand,
            )
            for advertiser in instance.advertisers
        ]
        print(f"{label}: regret={allocation.total_regret():.2f} rows={rows}")
    print(f"BLS recovers regret={bls.total_regret:.2f}")

    # Paper values.
    assert strategy1.total_regret() == pytest.approx(13.25)
    assert strategy2.total_regret() == 0.0
    assert bls.total_regret == pytest.approx(0.0)
