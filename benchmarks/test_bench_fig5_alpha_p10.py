"""F5: regret vs α at p(Ī^A) = 10 % (Figure 5, NYC, |A| = 10 at α = 100 %)."""

from benchmarks._alpha_figure import run_alpha_figure


def test_fig5(benchmark, cities, sweep_store):
    result = run_alpha_figure(
        benchmark, cities, sweep_store, "nyc", 0.10,
        "Figure 5: regret vs alpha (NYC, p=10%)",
    )
    # Case 2: BLS nearly zero at low α with big advertisers.
    low = result.values[0]
    assert result.cells[low]["bls"].total_regret <= result.cells[low]["g-order"].total_regret + 1e-6
