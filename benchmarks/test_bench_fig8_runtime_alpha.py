"""F8: running time vs α (Figure 8).

Reports the wall-clock seconds measured during the α sweeps of Figure 4
(NYC) and Figure 7 (SG) — the paper likewise derives its efficiency plots
from the effectiveness runs.  Shape: the greedies are far cheaper than the
local searches, and search cost grows as the market tightens.
"""

import numpy as np

from benchmarks.conftest import alpha_sweep
from repro.experiments.reporting import format_runtime_table


def test_fig8(benchmark, cities, sweep_store):
    results = benchmark.pedantic(
        lambda: {
            dataset: alpha_sweep(sweep_store, cities, dataset, 0.05)
            for dataset in ("nyc", "sg")
        },
        rounds=1,
        iterations=1,
    )

    print()
    for dataset, result in results.items():
        print(format_runtime_table(result, f"Figure 8 ({dataset.upper()}): runtime vs alpha"))
        print()

    for dataset, result in results.items():
        greedy_mean = np.mean(result.series("g-global", "runtime_s"))
        als_mean = np.mean(result.series("als", "runtime_s"))
        bls_mean = np.mean(result.series("bls", "runtime_s"))
        # G-Order ≈ G-Global ≪ ALS < BLS.
        assert greedy_mean < als_mean < bls_mean, dataset
        # Search cost grows with α (compare the loosest and tightest markets).
        bls_series = result.series("bls", "runtime_s")
        assert bls_series[-1] > bls_series[0], dataset
