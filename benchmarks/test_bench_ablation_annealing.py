"""Ablation: the paper's restart + strictly-improving local search (BLS)
versus a generic simulated-annealing search over the same move set.

Supports the paper's Section 6 design choice: on MROAM's landscape the
structured neighbourhood with greedy completion recovers better plans than
undirected Metropolis exploration at a comparable time budget.
"""

from benchmarks.conftest import bench_scenario
from repro.algorithms.registry import make_solver


def run_comparison(cities):
    instance = bench_scenario("nyc").with_params(alpha=1.0).build_instance(cities("nyc"))
    bls = make_solver("bls", seed=7, restarts=2).solve(instance)
    # SA budget tuned to the same order of wall-clock as the BLS run.
    sa = make_solver("sa", seed=7, steps=40_000).solve(instance)
    greedy = make_solver("g-global").solve(instance)
    return {"bls": bls, "sa": sa, "g-global": greedy}


def test_ablation_annealing(benchmark, cities):
    results = benchmark.pedantic(lambda: run_comparison(cities), rounds=1, iterations=1)

    print("\nAblation: BLS vs simulated annealing (NYC, alpha=100%)")
    for name, result in results.items():
        print(
            f"  {name:<9} regret={result.total_regret:>10.1f} "
            f"satisfied={result.satisfied_count} time={result.runtime_s:.2f}s"
        )

    # Both searches refine the greedy; the paper's structured search should
    # not lose to undirected annealing.
    assert results["sa"].total_regret <= results["g-global"].total_regret + 1e-6
    assert results["bls"].total_regret <= results["sa"].total_regret + 1e-6
