"""Daily operations: proposals arriving one at a time.

The paper's batch solvers assume the whole proposal book is known.  Real
hosts (the paper's intro: "the host needs to deal with multiple advertisers
coming every day") operate online: each incoming proposal is *quoted* —
"what does accepting this do to my regret?" — then accepted or declined,
with a full re-optimization overnight.

This example drives :class:`repro.market.OnlineHost` through a day:

1. quote each incoming proposal against the current book;
2. accept the attractive ones, decline the ones that would blow up regret;
3. run the nightly full local search and compare.

Run with::

    python examples/daily_operations.py
"""

from repro.analysis import market_summary, plan_report
from repro.datasets import generate_nyc
from repro.market import OnlineHost

#: Today's inbox: (advertiser, demand as a fraction of supply, rate).
INBOX = [
    ("Coffee chain", 0.08, 1.05),
    ("Phone carrier", 0.20, 1.00),
    ("Indie theatre", 0.03, 0.95),
    ("Ride hailing app", 0.25, 1.10),
    ("Furniture outlet", 0.12, 0.90),
    ("Energy drink", 0.18, 1.00),
    ("Language school", 0.05, 1.00),
    ("Luxury watches", 0.30, 1.20),  # huge — likely unserviceable by now
]


def main() -> None:
    city = generate_nyc(n_billboards=400, n_trajectories=5_000, seed=33)
    coverage = city.coverage(lambda_m=100.0)
    host = OnlineHost(coverage, gamma=0.5, repair_sweeps=2, seed=33)
    supply = coverage.supply

    print(f"Inventory ready: |U|={coverage.num_billboards}, supply I*={supply:,}")
    print()
    accepted = 0
    for name, fraction, rate in INBOX:
        demand = max(1, int(fraction * supply))
        payment = float(int(rate * demand))
        quote = host.quote(demand, payment, name=name)
        verdict = "ACCEPT" if quote.attractive else "DECLINE"
        print(
            f"{name:<18} demand={demand:>6,} payment=${payment:>8,.0f} "
            f"regret {quote.regret_before:>8.1f} -> {quote.regret_after:>8.1f} "
            f"satisfiable={'Y' if quote.would_satisfy else 'N'}  => {verdict}"
        )
        if quote.attractive:
            host.accept(demand, payment, name=name)
            accepted += 1

    print()
    print(f"Book at end of day: {accepted} campaigns, regret={host.total_regret():.1f}")
    print(market_summary(host.instance()).describe())
    print()

    nightly = host.reoptimize(restarts=3)
    print(f"After nightly re-optimization: regret={nightly:.1f}")
    print()
    for row in plan_report(host.allocation):
        print(" ", row.as_row())


if __name__ == "__main__":
    main()
