"""Bring your own data: build an MROAM instance from raw arrays.

Hosts have their own billboard registries and audience measurements.  This
example shows the three integration points:

1. construct ``BillboardDB`` / ``TrajectoryDB`` from plain coordinate arrays
   (here: a toy 3×3 street grid with commuter flows);
2. persist and reload the city as CSV (``repro.datasets.io``);
3. derive the coverage model, attach advertiser contracts, solve, and
   inspect the plan billboard by billboard.

Run with::

    python examples/custom_city.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import Advertiser, BillboardDB, CoverageIndex, MROAMInstance, make_solver
from repro.datasets.io import load_city, save_city
from repro.datasets.synthetic import CityDataset
from repro.trajectory.model import Trajectory, TrajectoryDB


def build_toy_city() -> CityDataset:
    """A 3×3 downtown grid, billboards at intersections, commuter flows."""
    spacing = 400.0  # metres between intersections
    intersections = np.array(
        [[x * spacing, y * spacing] for x in range(3) for y in range(3)]
    )
    billboards = BillboardDB.from_locations(
        intersections, labels=[f"corner-{i}" for i in range(len(intersections))]
    )

    rng = np.random.default_rng(11)
    trajectories = []
    for trajectory_id in range(300):
        # Commuters enter on the west edge and traverse east along one street,
        # with a few wanderers crossing north-south.
        if rng.random() < 0.7:
            row = float(rng.integers(0, 3)) * spacing
            xs = np.linspace(-200.0, 2 * spacing + 200.0, 12)
            points = np.column_stack([xs, np.full_like(xs, row)])
        else:
            column = float(rng.integers(0, 3)) * spacing
            ys = np.linspace(-200.0, 2 * spacing + 200.0, 12)
            points = np.column_stack([np.full_like(ys, column), ys])
        points = points + rng.normal(0.0, 15.0, size=points.shape)  # GPS noise
        trajectories.append(Trajectory(trajectory_id, points, travel_time=420.0))
    return CityDataset("toy-grid", billboards, TrajectoryDB(trajectories))


def main() -> None:
    city = build_toy_city()
    print(f"Built {city.describe()}")

    # Round-trip through the CSV format, as you would with real exports.
    with tempfile.TemporaryDirectory() as tmp:
        directory = save_city(city, Path(tmp) / "toy-grid")
        city = load_city(directory)
        print(f"Saved and reloaded from {directory.name}/")

    coverage: CoverageIndex = city.coverage(lambda_m=100.0)
    print(f"Host supply I* = {coverage.supply:,} "
          f"(reachable audience {coverage.total_reachable():,} of {coverage.num_trajectories:,})")

    instance = MROAMInstance(
        coverage,
        [
            Advertiser(0, demand=int(0.30 * coverage.supply), payment=300.0, name="anchor tenant"),
            Advertiser(1, demand=int(0.15 * coverage.supply), payment=160.0, name="food court"),
            Advertiser(2, demand=int(0.10 * coverage.supply), payment=100.0, name="pop-up store"),
        ],
        gamma=0.5,
    )

    result = make_solver("bls", seed=1, restarts=3).solve(instance)
    print(f"\nBLS plan: regret={result.total_regret:.1f}, "
          f"satisfied {result.satisfied_count}/{instance.num_advertisers}")
    for advertiser in instance.advertisers:
        boards = sorted(result.allocation.billboards_of(advertiser.advertiser_id))
        labels = [city.billboards[b].label for b in boards]
        achieved = result.allocation.influence(advertiser.advertiser_id)
        print(f"  {advertiser.name:<14} -> {labels} "
              f"(influence {achieved:,} / demand {advertiser.demand:,})")


if __name__ == "__main__":
    main()
