"""General applicability: telecom tower capacity allocation.

The paper's introduction argues the regret framework transfers to any
provider provisioning resources against customer demands — its worked
non-OOH case is telecommunication marketing: *"the host owns
telecommunication towers and mobile operators renting towers play the role
of advertisers, where the demand of an operator is the number of customers
accessing its network."*

This example instantiates exactly that with the same library API:

* towers = "billboards" (a tower covers subscribers within its radio range);
* subscribers = single-point "trajectories" (home locations);
* operators = "advertisers" with subscriber-count demands and rental fees;
* over- or under-provisioning a tower portfolio = the two regret sources.

Run with::

    python examples/telecom_towers.py
"""

import numpy as np

from repro import Advertiser, BillboardDB, CoverageIndex, MROAMInstance, make_solver
from repro.analysis import inventory_criticality, plan_report
from repro.trajectory.model import Trajectory, TrajectoryDB

RANGE_M = 1_200.0  # radio range, plays the role of λ


def build_region(seed: int = 19):
    """A 20×20 km region: towns of subscribers and a tower grid."""
    rng = np.random.default_rng(seed)
    towns = rng.uniform(2_000.0, 18_000.0, size=(8, 2))
    town_weights = rng.dirichlet(np.ones(8) * 2.0)

    # Subscribers cluster around towns.
    choices = rng.choice(8, size=6_000, p=town_weights)
    homes = towns[choices] + rng.normal(0.0, 900.0, size=(6_000, 2))
    subscribers = TrajectoryDB(
        Trajectory(i, homes[i : i + 1]) for i in range(len(homes))
    )

    # Towers on a coarse grid plus extra capacity near the towns.
    grid = np.array(
        [[x, y] for x in np.arange(1_000.0, 20_000.0, 2_000.0)
         for y in np.arange(1_000.0, 20_000.0, 2_000.0)]
    )
    boosters = towns.repeat(3, axis=0) + rng.normal(0.0, 600.0, size=(24, 2))
    towers = BillboardDB.from_locations(
        np.vstack([grid, boosters]),
        labels=[f"tower-{i}" for i in range(len(grid) + len(boosters))],
    )
    return towers, subscribers


def main() -> None:
    towers, subscribers = build_region()
    coverage = CoverageIndex(towers, subscribers, lambda_m=RANGE_M)
    print(
        f"Region: {coverage.num_billboards} towers, "
        f"{coverage.num_trajectories:,} subscribers, "
        f"capacity supply I*={coverage.supply:,}"
    )

    supply = coverage.supply
    operators = [
        Advertiser(0, int(0.28 * supply), float(int(0.29 * supply)), name="RedCell"),
        Advertiser(1, int(0.22 * supply), float(int(0.22 * supply)), name="BlueWave"),
        Advertiser(2, int(0.12 * supply), float(int(0.11 * supply)), name="GreenNet"),
    ]
    instance = MROAMInstance(coverage, operators, gamma=0.5)

    result = make_solver("bls", seed=19, restarts=3).solve(instance)
    print(f"\nTower allocation (BLS): regret={result.total_regret:.1f}, "
          f"operators satisfied {result.satisfied_count}/{len(operators)}")
    for row in plan_report(result.allocation):
        print(" ", row.as_row())

    print("\nMost critical towers (regret increase if decommissioned):")
    for row in inventory_criticality(result.allocation, top_k=5):
        print(
            f"  {towers[row.billboard_id].label:<10} -> "
            f"{operators[row.advertiser_id].name:<9} "
            f"+{row.regret_increase_if_lost:.1f} regret "
            f"(covers {row.individual_influence} subscribers)"
        )


if __name__ == "__main__":
    main()
