"""Campaign planning from the host's seat.

A realistic day at an OOH host: a fixed billboard inventory, a batch of
campaign proposals of very different sizes, and one question — *which
billboards go to whom?*  This example:

1. builds the inventory and audience model;
2. takes explicit campaign proposals (instead of the synthetic market);
3. solves with BLS and prints a per-advertiser deployment report;
4. quantifies what the recommended plan is worth versus the naive greedy,
   using the dual objective R' (expected collectable revenue).

Run with::

    python examples/host_campaign_planning.py
"""

from repro import Advertiser, MROAMInstance, make_solver
from repro.datasets import generate_nyc

#: The day's campaign proposals: (name, demanded influence as a fraction of
#: the host's supply, committed payment per unit of demanded influence).
PROPOSALS = [
    ("MegaCorp spring launch", 0.26, 1.05),
    ("City museum exhibition", 0.10, 1.00),
    ("Neighborhood bakery", 0.03, 0.95),
    ("Streaming service premiere", 0.20, 1.10),
    ("Local election awareness", 0.09, 0.90),
    ("Sports club season tickets", 0.07, 1.00),
]


def build_instance() -> MROAMInstance:
    city = generate_nyc(n_billboards=400, n_trajectories=5_000, seed=21)
    coverage = city.coverage(lambda_m=100.0)
    supply = coverage.supply
    advertisers = []
    for advertiser_id, (name, demand_fraction, rate) in enumerate(PROPOSALS):
        demand = max(1, int(demand_fraction * supply))
        payment = float(int(rate * demand))
        advertisers.append(Advertiser(advertiser_id, demand, payment, name=name))
    return MROAMInstance(coverage, advertisers, gamma=0.5)


def report(instance: MROAMInstance, allocation, title: str) -> None:
    print(title)
    print("-" * len(title))
    for advertiser in instance.advertisers:
        advertiser_id = advertiser.advertiser_id
        achieved = allocation.influence(advertiser_id)
        boards = len(allocation.billboards_of(advertiser_id))
        status = "satisfied" if achieved >= advertiser.demand else "UNSATISFIED"
        collectable = instance.dual_of(advertiser_id, achieved)
        print(
            f"  {advertiser.name:<28} demand={advertiser.demand:>6,} "
            f"achieved={achieved:>6,} boards={boards:>3} {status:<12} "
            f"collectable=${collectable:,.0f}"
        )
    breakdown = allocation.breakdown()
    print(
        f"  total regret = {breakdown.total:,.1f} "
        f"(unsatisfied penalty {breakdown.unsatisfied_penalty:,.1f}, "
        f"excessive influence {breakdown.excessive_influence:,.1f})"
    )
    print(f"  expected collectable revenue R' = ${allocation.total_dual():,.0f}")
    print()


def main() -> None:
    instance = build_instance()
    print(f"Inventory: {instance.describe()}")
    print(f"Committed payments if everyone is satisfied: ${instance.total_payment():,.0f}")
    print()

    greedy = make_solver("g-order").solve(instance)
    report(instance, greedy.allocation, "Naive plan (budget-effective greedy)")

    bls = make_solver("bls", seed=3, restarts=4).solve(instance)
    report(instance, bls.allocation, "Recommended plan (BLS)")

    saved = greedy.total_regret - bls.total_regret
    print(f"BLS reduces the host's regret by {saved:,.1f} "
          f"({100.0 * saved / max(greedy.total_regret, 1e-9):.0f}% of the greedy plan's).")


if __name__ == "__main__":
    main()
