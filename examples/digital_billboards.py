"""Digital billboards: selling the same panel in time slots.

Section 3.2 of the paper notes a digital billboard is just "multiple
billboards, one for a certain time slot".  This example makes the economics
visible:

1. build a city whose trips carry rush-hour departure times;
2. expand the physical inventory into 4 time-slot virtual billboards;
3. sell the *same* demand book against the static inventory and against the
   digital one, and compare regret — time slicing lets the host serve
   time-disjoint audiences with the same panel, growing effective supply.

Run with::

    python examples/digital_billboards.py
"""

from repro import Advertiser, MROAMInstance, make_solver
from repro.billboard.digital import day_slots, expand_digital
from repro.datasets import generate_nyc


def contracts(supply: int) -> list[tuple[int, float]]:
    """A demand book sized against the given supply."""
    fractions = (0.30, 0.25, 0.20, 0.15, 0.10, 0.10)
    return [(max(1, int(f * supply)), float(int(f * supply))) for f in fractions]


def solve(instance: MROAMInstance, label: str) -> float:
    result = make_solver("bls", seed=5, restarts=2).solve(instance)
    breakdown = result.breakdown
    print(
        f"{label:<22} regret={result.total_regret:>9.1f} "
        f"(unsat {breakdown.unsatisfied_penalty:>8.1f} / excess {breakdown.excessive_influence:>7.1f}) "
        f"satisfied={result.satisfied_count}/{instance.num_advertisers}"
    )
    return result.total_regret


def main() -> None:
    city = generate_nyc(n_billboards=250, n_trajectories=4_000, seed=17)
    physical = city.coverage(lambda_m=100.0)

    slots = day_slots(4)
    expansion = expand_digital(physical, city.trajectories, slots=slots)
    print(f"Physical inventory: {physical.num_billboards} panels, supply={physical.supply:,}")
    print(
        f"Digital inventory:  {expansion.num_virtual} virtual billboards "
        f"({len(slots)} slots/panel), supply={expansion.coverage.supply:,}"
    )
    for slot in slots:
        slot_supply = sum(
            expansion.coverage.influence_of(expansion.virtual_id(panel, slot.slot_id))
            for panel in range(physical.num_billboards)
        )
        print(f"  slot {slot.label()}: supply {slot_supply:,}")
    print()

    # The same (static-supply-sized) demand book on both inventories.
    book = contracts(physical.supply)
    print(f"Demand book: {[demand for demand, _ in book]} (total "
          f"{sum(d for d, _ in book):,} vs physical supply {physical.supply:,})")
    print()

    static_instance = MROAMInstance(
        physical, [Advertiser(i, d, p) for i, (d, p) in enumerate(book)], gamma=0.5
    )
    digital_instance = MROAMInstance(
        expansion.coverage, [Advertiser(i, d, p) for i, (d, p) in enumerate(book)], gamma=0.5
    )

    static_regret = solve(static_instance, "Static panels")
    digital_regret = solve(digital_instance, "Digital (4 slots)")
    print()
    if digital_regret < static_regret:
        print("Time slicing reduced the host's regret: the same panel now serves")
        print("time-disjoint audiences for different advertisers.")
    else:
        print("Time slicing did not pay off for this book (slot audiences are")
        print("too thin relative to the demands).")


if __name__ == "__main__":
    main()
