"""Quickstart: generate a city, build an MROAM instance, compare all methods.

Run with::

    python examples/quickstart.py

This walks the library's main path end to end:

1. synthesize an NYC-like city (billboards + taxi trajectories);
2. derive the coverage influence model at λ = 100 m;
3. sample an advertiser market at the paper's default workload
   (α = 100 %, p(Ī^A) = 5 %, γ = 0.5);
4. run the paper's four methods and compare regret, its decomposition, and
   runtime.
"""

from repro import make_solver
from repro.algorithms.registry import PAPER_METHODS
from repro.market import Scenario


def main() -> None:
    scenario = Scenario(
        dataset="nyc",
        n_billboards=400,
        n_trajectories=5_000,
        alpha=1.0,  # global demand = 100 % of the host's supply
        p_avg=0.05,  # each advertiser demands ~5 % of the supply → |A| = 20
        gamma=0.5,  # unsatisfied advertisers pay half pro-rata
        lambda_m=100.0,
        seed=7,
    )
    print("Building the city and coverage index...")
    instance = scenario.build_instance()
    print(f"  {instance.describe()}")
    print(f"  host supply I* = {instance.coverage.supply:,}")
    print(f"  total committed payments = ${instance.total_payment():,.0f}")
    print()

    print(f"{'method':<10} {'regret':>10} {'excess%':>8} {'unsat%':>8} {'satisfied':>10} {'time':>8}")
    for method in PAPER_METHODS:
        solver = make_solver(method, seed=7, restarts=3)
        result = solver.solve(instance)
        breakdown = result.breakdown
        excess_pct = 100.0 * breakdown.excessive_share
        unsat_pct = 100.0 * breakdown.unsatisfied_share
        print(
            f"{solver.name:<10} {result.total_regret:>10.1f} {excess_pct:>7.1f}% "
            f"{unsat_pct:>7.1f}% {result.satisfied_count:>5}/{instance.num_advertisers:<4} "
            f"{result.runtime_s:>7.2f}s"
        )

    print()
    print("Expected shape: BLS achieves the lowest regret; the greedies are")
    print("fastest; ALS sits between (paper Sections 7.2-7.3).")


if __name__ == "__main__":
    main()
