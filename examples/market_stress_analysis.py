"""Market stress analysis: the paper's Q1 and Q2, as a host would ask them.

Q1 — what happens when the global demand is far below, close to, or above
     my total supply?
Q2 — am I better off with a few big advertisers or many small ones?

This example sweeps the demand–supply ratio α and the average-individual
demand ratio p(Ī^A) on a scaled NYC-like market, prints the regret landscape
for the recommended method (BLS) vs the greedy baseline, and restates the
paper's Section 7.2 guidance in terms of the measured numbers.

Run with::

    python examples/market_stress_analysis.py
"""

from repro.experiments.harness import sweep
from repro.market import Scenario

ALPHAS = (0.4, 0.8, 1.0, 1.2)
P_AVGS = (0.02, 0.05, 0.10)


def main() -> None:
    base = Scenario(
        dataset="nyc", n_billboards=300, n_trajectories=4_000, seed=5
    )
    city = base.build_city()
    methods = ("g-global", "bls")

    print("Q1: vary global demand (alpha) at the default advertiser size (p=5%)")
    print(f"{'alpha':>7} | {'G-Global':>12} | {'BLS':>12} | {'BLS unsat%':>10} | {'BLS excess%':>11}")
    alpha_result = sweep(base, "alpha", ALPHAS, methods=methods, restarts=2, city=city)
    for alpha in ALPHAS:
        greedy = alpha_result.metric(alpha, "g-global")
        bls = alpha_result.metric(alpha, "bls")
        print(
            f"{alpha:>6.0%} | {greedy.total_regret:>12.1f} | {bls.total_regret:>12.1f} "
            f"| {bls.unsatisfied_pct:>9.1f}% | {bls.excessive_pct:>10.1f}%"
        )
    print()
    print("Reading: at low alpha regret is (small) excessive influence; once the")
    print("market tightens past alpha=100% the unsatisfied penalty takes over and")
    print("allocation quality (BLS vs greedy) matters most. (Paper Q1.)")
    print()

    print("Q2: vary advertiser granularity (p) at a tight market (alpha=100%)")
    print(f"{'p(avg)':>7} | {'|A|':>4} | {'G-Global':>12} | {'BLS':>12} | {'BLS satisfied':>13}")
    p_result = sweep(base, "p_avg", P_AVGS, methods=methods, restarts=2, city=city)
    for p_avg in P_AVGS:
        greedy = p_result.metric(p_avg, "g-global")
        bls = p_result.metric(p_avg, "bls")
        print(
            f"{p_avg:>6.0%} | {bls.num_advertisers:>4} | {greedy.total_regret:>12.1f} "
            f"| {bls.total_regret:>12.1f} | {bls.satisfied_advertisers:>6}/{bls.num_advertisers}"
        )
    print()
    print("Reading: with the same global demand, many medium advertisers give the")
    print("host more packing flexibility and a smaller penalty per miss than a few")
    print("huge ones. (Paper Q2: a large base of medium-demand advertisers is the")
    print("ideal balance.)")


if __name__ == "__main__":
    main()
